package profile

import (
	"fmt"
	"testing"

	"repro/internal/metrics"
	"repro/internal/object"
	"repro/internal/trace"
	"repro/internal/trg"
)

// workload drives a deterministic reference stream. The same function runs
// against the sequential oracle and every sharded configuration, so both
// see byte-for-byte the same table and event sequence.
type workload struct {
	name string
	run  func(tbl *object.Table, em *trace.Emitter)
}

// lcg is a tiny deterministic generator for skewed-but-reproducible
// offsets; math/rand would work too, this keeps the streams self-evident.
type lcg uint64

func (r *lcg) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 33)
}

var shardWorkloads = []workload{
	{
		// Alternation-heavy traffic over small globals: maximal queue
		// churn, every touch re-finds its key and scans past the others.
		name: "alternation",
		run: func(tbl *object.Table, em *trace.Emitter) {
			var gs []object.ID
			for i := 0; i < 8; i++ {
				gs = append(gs, tbl.AddGlobal(fmt.Sprintf("g%d", i), 64))
			}
			for i := 0; i < 4000; i++ {
				em.Load(gs[i%8], 0, 8)
				em.Store(gs[(i*3+1)%8], 8, 8)
				if i%5 == 0 {
					em.Load(object.StackID, int64(i%512), 8)
				}
			}
		},
	},
	{
		// Large chunk-spanning objects with a skewed access pattern:
		// exercises multi-chunk expansion, partial tail chunks, and
		// cross-set-group edges.
		name: "spanning",
		run: func(tbl *object.Table, em *trace.Emitter) {
			bigA := tbl.AddGlobal("bigA", 4096+40) // 17 chunks, short tail
			bigB := tbl.AddGlobal("bigB", 2048)
			small := tbl.AddGlobal("small", 96)
			var r lcg = 42
			for i := 0; i < 3000; i++ {
				em.Load(bigA, int64(r.next()%3600), int64(16+r.next()%500))
				if i%3 == 0 {
					em.Store(bigB, int64(r.next()%1984), 64)
				}
				if i%2 == 0 {
					em.Load(small, 0, 8)
				}
			}
		},
	},
	{
		// Heap churn: allocs and frees interleaved with loads, multiple
		// XOR names, one name with concurrently-live instances. Allocs
		// flush the emitter ring, so this also exercises the
		// HandleEvent (unbatched) path of both profilers.
		name: "heapchurn",
		run: func(tbl *object.Table, em *trace.Emitter) {
			g := tbl.AddGlobal("anchor", 256)
			var r lcg = 7
			for i := 0; i < 600; i++ {
				xor := uint64(0xBEEF + i%4)
				h := em.Malloc("h", 128+int64(i%3)*256, xor)
				h2 := em.Malloc("h2", 512, 0xF00D) // concurrent with h
				for j := 0; j < 4; j++ {
					em.Load(h, int64(r.next()%120), 8)
					em.Store(h2, int64(r.next()%496), 16)
					em.Load(g, 0, 8)
				}
				em.Free(h)
				em.Free(h2)
			}
		},
	},
}

func runSequential(t *testing.T, cfg Config, wl workload) *Profile {
	t.Helper()
	tbl := object.NewTable(1024)
	p, err := New(cfg, tbl)
	if err != nil {
		t.Fatal(err)
	}
	em := trace.NewEmitter(tbl, p)
	wl.run(tbl, em)
	em.Flush()
	return p.Finish()
}

func runSharded(t *testing.T, cfg Config, wl workload, shards int, cacheSize int64) *Profile {
	t.Helper()
	tbl := object.NewTable(1024)
	s, err := NewSharded(cfg, tbl, shards, cacheSize)
	if err != nil {
		t.Fatal(err)
	}
	em := trace.NewEmitter(tbl, s)
	wl.run(tbl, em)
	em.Flush()
	return s.Finish()
}

type edgeTriple struct {
	a, b trg.ChunkKey
	w    uint64
}

func edgesOf(g *trg.Graph) []edgeTriple {
	var out []edgeTriple
	g.ForEachEdge(func(a, b trg.ChunkKey, w uint64) {
		out = append(out, edgeTriple{a, b, w})
	})
	return out
}

// requireEqualProfiles asserts got is indistinguishable from want across
// everything the placement stage and the persisted profile can observe:
// reference totals, node tables, object-to-node maps, and the exact edge
// multiset in deterministic iteration order.
func requireEqualProfiles(t *testing.T, want, got *Profile, label string) {
	t.Helper()
	if got.TotalRefs != want.TotalRefs {
		t.Fatalf("%s: TotalRefs %d, want %d", label, got.TotalRefs, want.TotalRefs)
	}
	if gn, wn := got.Graph.NumNodes(), want.Graph.NumNodes(); gn != wn {
		t.Fatalf("%s: %d nodes, want %d", label, gn, wn)
	}
	for id := 0; id < want.Graph.NumNodes(); id++ {
		g, w := *got.Graph.Node(trg.NodeID(id)), *want.Graph.Node(trg.NodeID(id))
		if g != w {
			t.Fatalf("%s: node %d differs:\n got %+v\nwant %+v", label, id, g, w)
		}
	}
	if len(got.NodeOf) != len(want.NodeOf) {
		t.Fatalf("%s: NodeOf length %d, want %d", label, len(got.NodeOf), len(want.NodeOf))
	}
	for i := range want.NodeOf {
		if got.NodeOf[i] != want.NodeOf[i] {
			t.Fatalf("%s: NodeOf[%d] = %d, want %d", label, i, got.NodeOf[i], want.NodeOf[i])
		}
	}
	if len(got.HeapNode) != len(want.HeapNode) {
		t.Fatalf("%s: %d heap names, want %d", label, len(got.HeapNode), len(want.HeapNode))
	}
	for xor, nd := range want.HeapNode {
		if got.HeapNode[xor] != nd {
			t.Fatalf("%s: heap name %#x -> node %d, want %d", label, xor, got.HeapNode[xor], nd)
		}
	}
	if ge, we := got.Graph.NumEdges(), want.Graph.NumEdges(); ge != we {
		t.Fatalf("%s: %d edges, want %d", label, ge, we)
	}
	if gw, ww := got.Graph.TotalWeight(), want.Graph.TotalWeight(); gw != ww {
		t.Fatalf("%s: total weight %d, want %d", label, gw, ww)
	}
	wantEdges, gotEdges := edgesOf(want.Graph), edgesOf(got.Graph)
	for i := range wantEdges {
		if gotEdges[i] != wantEdges[i] {
			t.Fatalf("%s: edge[%d] = {%x,%x,%d}, want {%x,%x,%d}", label, i,
				gotEdges[i].a, gotEdges[i].b, gotEdges[i].w,
				wantEdges[i].a, wantEdges[i].b, wantEdges[i].w)
		}
	}
}

// TestShardedMatchesSequential is the differential oracle of the sharded
// profiler: for every workload pattern, shard count, and queue threshold,
// the parallel result must be exactly — not approximately — the
// single-queue sequential result.
func TestShardedMatchesSequential(t *testing.T) {
	const cacheSize = 8192 // 32 set groups at 256-byte chunks
	for _, wl := range shardWorkloads {
		for _, threshold := range []int64{1024, 16384} {
			cfg := smallConfig()
			cfg.QueueThreshold = threshold
			want := runSequential(t, cfg, wl)
			for _, shards := range []int{1, 2, 4, 8} {
				label := fmt.Sprintf("%s/threshold=%d/shards=%d", wl.name, threshold, shards)
				got := runSharded(t, cfg, wl, shards, cacheSize)
				requireEqualProfiles(t, want, got, label)
			}
		}
	}
}

// TestShardedSamplingMatchesSequential covers time sampling interacting
// with batched delivery and sharding: the sampling decision depends on the
// global reference counter, so it must be insensitive to whether events
// arrive singly, in ring batches, or fanned out to shard workers.
func TestShardedSamplingMatchesSequential(t *testing.T) {
	cfg := smallConfig()
	cfg.SampleWindow = 3
	cfg.SamplePeriod = 10
	for _, wl := range shardWorkloads {
		// Unbatched oracle: HandlerFunc does not implement BatchHandler,
		// so the emitter delivers every event through HandleEvent.
		tbl := object.NewTable(1024)
		p, err := New(cfg, tbl)
		if err != nil {
			t.Fatal(err)
		}
		em := trace.NewEmitter(tbl, trace.HandlerFunc(p.HandleEvent))
		wl.run(tbl, em)
		em.Flush()
		unbatched := p.Finish()

		batched := runSequential(t, cfg, wl)
		requireEqualProfiles(t, unbatched, batched, wl.name+"/batched-vs-unbatched")
		for _, shards := range []int{2, 4} {
			got := runSharded(t, cfg, wl, shards, 8192)
			requireEqualProfiles(t, unbatched, got,
				fmt.Sprintf("%s/sampled/shards=%d", wl.name, shards))
		}
		// Sampling must not lose metadata completeness.
		if unbatched.TotalRefs == 0 {
			t.Fatalf("%s: sampled run recorded no references", wl.name)
		}
	}
}

// TestShardedGeometryClamping pins the shard-count derivation: workers
// beyond the number of cache set groups could never own work, and
// degenerate inputs fall back to one shard.
func TestShardedGeometryClamping(t *testing.T) {
	cases := []struct {
		shards    int
		cacheSize int64
		want      int
	}{
		{64, 1024, 4}, // 4 set groups cap 64 requested workers
		{4, 8192, 4},  // fits
		{0, 8192, 1},  // non-positive request clamps up
		{-3, 8192, 1}, //
		{8, 128, 1},   // cache smaller than one chunk: one set group
		{16, 0, 16},   // cacheSize<=0 derives from threshold/2 = 8192...
		{64, -1, 32},  // ...32 set groups, capping at 32
	}
	for _, c := range cases {
		s, err := NewSharded(smallConfig(), object.NewTable(16), c.shards, c.cacheSize)
		if err != nil {
			t.Fatal(err)
		}
		if s.Shards() != c.want {
			t.Errorf("shards=%d cache=%d: got %d workers, want %d",
				c.shards, c.cacheSize, s.Shards(), c.want)
		}
		s.Finish()
	}
}

// TestShardedMetricsParity asserts the instrumentation counters a sharded
// run reports equal a sequential run's — evictions are counted by exactly
// one queue replica, and the TRG totals are settled once at merge time —
// and that the per-shard edge counters and occupancy histogram appear.
func TestShardedMetricsParity(t *testing.T) {
	wl := shardWorkloads[0]
	cfg := smallConfig()
	cfg.QueueThreshold = 1024 // force evictions

	seqCfg := cfg
	seqCfg.Metrics = metrics.New()
	seq := runSequential(t, seqCfg, wl)

	shCfg := cfg
	shCfg.Metrics = metrics.New()
	// Pin the pure-parallel schedule: under adaptive warmup an edge's
	// weight can be split across worker 0's warmup arena and both owners'
	// arenas, which would stretch the per-shard counter bound below to
	// [merged, 3*merged]. Adaptive scheduling has its own tests.
	shCfg.AdaptiveWarmup = -1
	sh := runSharded(t, shCfg, wl, 4, 8192)
	requireEqualProfiles(t, seq, sh, "metrics-run")

	for _, ctr := range []metrics.Counter{metrics.QueueEvictions, metrics.TRGEdges, metrics.TRGWeight} {
		if g, w := shCfg.Metrics.Get(ctr), seqCfg.Metrics.Get(ctr); g != w {
			t.Errorf("counter %v: sharded %d, sequential %d", ctr, g, w)
		}
	}
	if seqCfg.Metrics.Get(metrics.QueueEvictions) == 0 {
		t.Fatal("workload caused no evictions; threshold too generous for the test")
	}

	var perShard uint64
	for i := 0; i < 4; i++ {
		perShard += shCfg.Metrics.GetNamed(fmt.Sprintf("profile.shard%02d.edges", i))
	}
	// An edge (a,b) can be accumulated by shard(a), shard(b), or both, so
	// the per-shard sum is bounded by [merged, 2*merged] and never zero.
	merged := uint64(sh.Graph.NumEdges())
	if perShard < merged || perShard > 2*merged {
		t.Errorf("per-shard edge counters sum to %d, outside [%d, %d]", perShard, merged, 2*merged)
	}
	snap := shCfg.Metrics.Snapshot()
	if h, ok := snap.Hist(metrics.HistQueueOccupancy.String()); !ok || h.Count == 0 {
		t.Error("queue occupancy histogram missing from sharded snapshot")
	}
	if h, ok := seqCfg.Metrics.Snapshot().Hist(metrics.HistQueueOccupancy.String()); !ok || h.Count == 0 {
		t.Error("queue occupancy histogram missing from sequential snapshot")
	}
}

// TestQueueFreeListNoAllocs pins the free-list recycling of queue entries:
// once the queue has warmed past its threshold, the insert/evict churn must
// reuse entries instead of allocating.
func TestQueueFreeListNoAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	var q recencyQueue
	q.init(1024, nil)
	keys := make([]trg.ChunkKey, 64)
	for i := range keys {
		keys[i] = trg.MakeChunkKey(trg.NodeID(i), 0)
	}
	for _, k := range keys { // warm: fill past threshold, build free list
		q.insert(k, 256)
	}
	i := 0
	avg := testing.AllocsPerRun(1000, func() {
		k := keys[i%len(keys)]
		i++
		if e := q.get(k); e != nil {
			q.moveToFront(e)
			return
		}
		q.insert(k, 256) // evicts one, recycles the entry
	})
	if avg != 0 {
		t.Fatalf("queue churn allocates %v per op, want 0", avg)
	}
}

// TestHandleBatchSteadyStateAllocs pins the specialized batch touch path:
// with nodes bound and edges materialized, a batch of loads must not
// allocate.
func TestHandleBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	tbl := object.NewTable(64)
	p, err := New(smallConfig(), tbl)
	if err != nil {
		t.Fatal(err)
	}
	var evs []trace.Event
	for i := 0; i < 8; i++ {
		id := tbl.AddGlobal(fmt.Sprintf("g%d", i), 64)
		evs = append(evs, trace.Event{Kind: trace.Load, Obj: id, Off: 0, Size: 8})
	}
	p.HandleBatch(evs) // warm: bind nodes, materialize edges
	p.HandleBatch(evs)
	avg := testing.AllocsPerRun(200, func() { p.HandleBatch(evs) })
	if avg != 0 {
		t.Fatalf("steady-state HandleBatch allocates %v per batch, want 0", avg)
	}
}
