// Package profile implements the profiling stage of CCDP: it consumes the
// reference stream once and produces the paper's two profiles (section 3):
//
//   - the Name profile: one record per placement object (id, reference
//     count, size, lifetime), carried on the TRG nodes; and
//   - the TRGplace graph: weighted edges between (object, chunk) pairs,
//     where a weight estimates the cache misses that would occur if the two
//     chunks shared a cache set.
//
// The TRG is built with a recency queue Q of the most recently accessed
// chunks. When chunk c is referenced and found in Q, the edge (c, x) is
// incremented for every entry x ahead of c, because a reference to x
// occurred between two references to c — if they overlapped in a direct-
// mapped cache, c would have missed. Q is capped at queue-threshold total
// bytes (the paper uses twice the cache size): entries that fall off the
// end would have been evicted by capacity anyway, so no relationship is
// recorded for them.
//
// Placement identity: globals, constants, and the stack map to one node per
// object; heap allocations map to one node per XOR call-stack name, because
// that is the unit the custom allocator can steer.
//
// Two profilers produce identical output: the sequential Profiler here,
// and the sharded parallel profiler in sharded.go that partitions the edge
// scans — the dominant cost — across per-cache-set-group workers.
package profile

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/object"
	"repro/internal/trace"
	"repro/internal/trg"
)

// Config controls profiling granularity.
type Config struct {
	// ChunkSize is the placement granularity in bytes (paper: 256).
	ChunkSize int64
	// QueueThreshold caps the total bytes of chunks in the recency queue
	// (paper: 2x the target cache size).
	QueueThreshold int64
	// PopularityCutoff is the fraction of total popularity covered by the
	// popular set in phase 0 (paper: 0.99).
	PopularityCutoff float64

	// SampleWindow/SamplePeriod enable time-sampled TRG construction,
	// the cost reduction the paper floats in section 5.2 ("alternative
	// techniques for gathering this information such as time sampling"):
	// out of every SamplePeriod references, only the first SampleWindow
	// feed the recency queue. Reference counts and object metadata are
	// always complete. Both zero = profile everything.
	SampleWindow uint64
	SamplePeriod uint64

	// StreamDepth is the per-worker batch buffer of the sharded profiler's
	// fan-out stream (0 = the default, 8). Trace-file replay raises it: the
	// producer is I/O bound there, so a deeper buffer absorbs decode
	// hiccups without stalling the shard workers. Runtime wiring only — it
	// never affects results and is never serialized.
	StreamDepth int `json:"-"`

	// AdaptiveWarmup is how many recency-queue touches the sharded
	// profiler processes inline while estimating the stream's hit ratio
	// before deciding a shard count (0 = the default, 4096; negative
	// disables the heuristic and fans out immediately). When the warmup
	// window is miss-dominated — constant insert/evict churn, almost no
	// queue hits and therefore almost no edge scans — the per-worker
	// replica-queue bookkeeping outweighs the partitioned scans, and the
	// profiler stays on one inline queue instead. Results are identical
	// either way; only the schedule changes. Runtime wiring only.
	AdaptiveWarmup int `json:"-"`

	// AdaptiveMinHitRatio is the queue hit ratio (hits/touches over the
	// warmup window) below which the sharded profiler falls back to one
	// shard (0 = the default, 0.25). Runtime wiring only.
	AdaptiveMinHitRatio float64 `json:"-"`

	// Metrics receives recency-queue and TRG instrumentation (nil =
	// disabled). It is runtime wiring, not a profiling parameter: it does
	// not affect results and is never serialized.
	Metrics *metrics.Collector `json:"-"`
}

// DefaultConfig returns the paper's parameters for a cache of cacheSize
// bytes.
func DefaultConfig(cacheSize int64) Config {
	return Config{
		ChunkSize:        trg.DefaultChunkSize,
		QueueThreshold:   2 * cacheSize,
		PopularityCutoff: 0.99,
	}
}

// Validate rejects unusable parameters.
func (c Config) Validate() error {
	if c.ChunkSize <= 0 {
		return fmt.Errorf("profile: chunk size %d <= 0", c.ChunkSize)
	}
	if c.QueueThreshold < c.ChunkSize {
		return fmt.Errorf("profile: queue threshold %d < chunk size %d", c.QueueThreshold, c.ChunkSize)
	}
	if c.PopularityCutoff <= 0 || c.PopularityCutoff > 1 {
		return fmt.Errorf("profile: popularity cutoff %g outside (0,1]", c.PopularityCutoff)
	}
	if (c.SampleWindow == 0) != (c.SamplePeriod == 0) {
		return fmt.Errorf("profile: sample window and period must be set together")
	}
	if c.SamplePeriod > 0 && c.SampleWindow > c.SamplePeriod {
		return fmt.Errorf("profile: sample window %d exceeds period %d", c.SampleWindow, c.SamplePeriod)
	}
	return nil
}

// Profile is the output of a profiling run.
type Profile struct {
	Config Config
	Graph  *trg.Graph

	// NodeOf maps object IDs from the profiled run to placement nodes.
	// Because workload runs are deterministic, global/constant/stack IDs
	// are identical across runs; heap objects are re-bound by XOR name.
	NodeOf []trg.NodeID

	// HeapNode maps XOR names to their placement node.
	HeapNode map[uint64]trg.NodeID

	// TotalRefs is the number of loads+stores profiled.
	TotalRefs uint64
}

// SizeEstimate approximates the profile's resident bytes — node arena,
// edge table, ID bindings, and heap-name map — for the sweep engine's
// peak-prep accounting. Overheads (string headers, map buckets) are
// approximated; the estimate is deterministic for a given profile.
func (p *Profile) SizeEstimate() int64 {
	const nodeBytes, edgeBytes, heapEntryBytes = 112, 24, 32
	n := int64(p.Graph.NumNodes())*nodeBytes + int64(p.Graph.NumEdges())*edgeBytes
	n += int64(len(p.NodeOf)) * 4
	n += int64(len(p.HeapNode)) * heapEntryBytes
	return n
}

// Node returns the placement node for object id, or trg.NoNode.
func (p *Profile) Node(id object.ID) trg.NodeID {
	if int(id) >= len(p.NodeOf) {
		return trg.NoNode
	}
	return p.NodeOf[id]
}

// binder is the Name-profile half of a profiling run: it resolves objects
// to placement nodes and maintains node metadata. It is inherently serial
// (node IDs are assigned in first-reference order) and is shared by the
// sequential Profiler and the sharded profiler, both of which run it on
// the event-delivery goroutine.
type binder struct {
	objs  *object.Table
	graph *trg.Graph

	nodeOf   []trg.NodeID
	heapNode map[uint64]trg.NodeID
	allocSeq int
}

func (b *binder) init(objs *object.Table, g *trg.Graph) {
	b.objs = objs
	b.graph = g
	b.heapNode = make(map[uint64]trg.NodeID)
}

// nodeFor resolves (creating if needed) the placement node of object id.
func (b *binder) nodeFor(id object.ID) trg.NodeID {
	for int(id) >= len(b.nodeOf) {
		b.nodeOf = append(b.nodeOf, trg.NoNode)
	}
	if nd := b.nodeOf[id]; nd != trg.NoNode {
		return nd
	}
	return b.bind(id, b.objs.Get(id))
}

// nodeForInfo is nodeFor against a caller-supplied snapshot of the
// object's table entry, for builders fed enriched records (HandleRecs)
// instead of a live table: the decoder's table may have advanced past the
// record being handled, so the record carries the fields binding reads.
// Objects bind on their first appearance and every bound field is fixed
// at table insertion, so the snapshot equals what nodeFor would read.
func (b *binder) nodeForInfo(id object.ID, in *object.Info) trg.NodeID {
	for int(id) >= len(b.nodeOf) {
		b.nodeOf = append(b.nodeOf, trg.NoNode)
	}
	if nd := b.nodeOf[id]; nd != trg.NoNode {
		return nd
	}
	return b.bind(id, in)
}

// bind creates the placement node for object id from its table entry.
func (b *binder) bind(id object.ID, in *object.Info) trg.NodeID {
	var nd trg.NodeID
	if in.Category == object.Heap {
		nd = b.heapNodeFor(in)
	} else {
		nd = b.graph.AddNode(trg.Node{
			Category: in.Category,
			Name:     in.Name,
			Size:     in.Size,
			Addr:     in.NaturalAddr,
		})
	}
	b.nodeOf[id] = nd
	return nd
}

func (b *binder) heapNodeFor(in *object.Info) trg.NodeID {
	if nd, ok := b.heapNode[in.XORName]; ok {
		n := b.graph.Node(nd)
		if in.Size > n.Size {
			n.Size = in.Size
		}
		return nd
	}
	nd := b.graph.AddNode(trg.Node{
		Category:   object.Heap,
		Name:       in.Name,
		Size:       in.Size,
		XORName:    in.XORName,
		AllocOrder: b.allocSeq,
	})
	b.heapNode[in.XORName] = nd
	return nd
}

func (b *binder) noteAlloc(id object.ID) {
	in := b.objs.Get(id)
	b.noteAllocInfo(id, in, b.objs.LiveWithXOR(in.XORName) > 1)
}

// noteAllocInfo is noteAlloc with the table reads hoisted to the caller:
// the snapshot Info plus the live-XOR-collision fact as observed when the
// Alloc was delivered (HandleRecs callers capture it at decode time, which
// is the same stream position noteAlloc reads it at).
func (b *binder) noteAllocInfo(id object.ID, in *object.Info, nonUnique bool) {
	nd := b.nodeForInfo(id, in)
	n := b.graph.Node(nd)
	n.AllocCount++
	b.allocSeq++
	if nonUnique {
		n.NonUniqueXOR = true
	}
}

// finishProfile creates nodes for declared-but-unreferenced globals and
// constants (they still need placement slots), computes popularity, and
// assembles the completed profile.
func (b *binder) finishProfile(cfg Config, refs uint64) *Profile {
	b.objs.ForEach(func(in *object.Info) {
		if in.Category == object.Global || in.Category == object.Constant {
			b.nodeFor(in.ID)
		}
	})
	b.graph.Finalize(cfg.PopularityCutoff)
	return &Profile{
		Config:    cfg,
		Graph:     b.graph,
		NodeOf:    b.nodeOf,
		HeapNode:  b.heapNode,
		TotalRefs: refs,
	}
}

// Profiler consumes the event stream and builds a Profile. It implements
// trace.Handler.
type Profiler struct {
	cfg Config
	binder

	q    recencyQueue
	refs uint64
}

// New creates a profiler over the given object table.
func New(cfg Config, objs *object.Table) (*Profiler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Profiler{cfg: cfg}
	p.binder.init(objs, trg.NewGraph(cfg.ChunkSize))
	p.graph.SetMetrics(cfg.Metrics)
	p.q.init(cfg.QueueThreshold, cfg.Metrics)
	return p, nil
}

// HandleEvent implements trace.Handler.
func (p *Profiler) HandleEvent(ev trace.Event) {
	switch ev.Kind {
	case trace.Load, trace.Store:
		p.refs++
		nd := p.nodeFor(ev.Obj)
		p.graph.Node(nd).Refs++
		if p.cfg.SamplePeriod > 0 && p.refs%p.cfg.SamplePeriod >= p.cfg.SampleWindow {
			// Time sampling: outside the sampling window the TRG queue
			// is left untouched (but metadata above stays complete).
			return
		}
		p.touchRange(nd, ev.Off, ev.Size)
	case trace.Alloc:
		p.noteAlloc(ev.Obj)
	case trace.Free:
		// Lifetime is tracked on the object table by the emitter; the
		// heap placement node survives for future allocations.
	}
}

// HandleBatch implements trace.BatchHandler. The emitter only batches
// loads and stores (allocs and frees flush first and arrive through
// HandleEvent), so the Kind switch is hoisted out entirely, and when time
// sampling is off — the common case — the per-event sampling check and
// reference-counter increment are hoisted too.
func (p *Profiler) HandleBatch(evs []trace.Event) {
	if p.cfg.SamplePeriod == 0 {
		for i := range evs {
			ev := &evs[i]
			nd := p.nodeFor(ev.Obj)
			p.graph.Node(nd).Refs++
			p.touchRange(nd, ev.Off, ev.Size)
		}
		p.refs += uint64(len(evs))
	} else {
		period, window := p.cfg.SamplePeriod, p.cfg.SampleWindow
		refs := p.refs
		for i := range evs {
			ev := &evs[i]
			refs++
			nd := p.nodeFor(ev.Obj)
			p.graph.Node(nd).Refs++
			if refs%period >= window {
				continue
			}
			p.touchRange(nd, ev.Off, ev.Size)
		}
		p.refs = refs
	}
	// Queue occupancy is sampled once per batch: fine-grained enough to
	// sketch the distribution, far off the per-reference path.
	p.cfg.Metrics.Observe(metrics.HistQueueOccupancy, uint64(p.q.occupancy()))
}

// touchRange feeds every chunk covered by [off, off+size) through the
// recency queue.
func (p *Profiler) touchRange(nd trg.NodeID, off, size int64) {
	if size <= 0 {
		size = 1
	}
	n := p.graph.Node(nd)
	first := off / p.cfg.ChunkSize
	last := (off + size - 1) / p.cfg.ChunkSize
	for c := first; c <= last; c++ {
		clen := p.cfg.ChunkSize
		if rem := n.Size - c*p.cfg.ChunkSize; rem < clen {
			clen = rem
		}
		if clen <= 0 {
			clen = 1
		}
		p.touch(trg.MakeChunkKey(nd, int(c)), clen)
	}
}

// touch is the TRG queue step from section 3.2.
func (p *Profiler) touch(key trg.ChunkKey, size int64) {
	if e := p.q.get(key); e != nil {
		// Record a temporal relationship with every chunk referenced
		// since the last touch of key (the entries ahead of it).
		for x := p.q.head; x != nil && x != e; x = x.next {
			p.graph.AddWeight(key, x.key, 1)
		}
		p.q.moveToFront(e)
		return
	}
	p.q.insert(key, size)
}

// Finish completes and returns the profile.
func (p *Profiler) Finish() *Profile {
	return p.finishProfile(p.cfg, p.refs)
}
