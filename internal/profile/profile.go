// Package profile implements the profiling stage of CCDP: it consumes the
// reference stream once and produces the paper's two profiles (section 3):
//
//   - the Name profile: one record per placement object (id, reference
//     count, size, lifetime), carried on the TRG nodes; and
//   - the TRGplace graph: weighted edges between (object, chunk) pairs,
//     where a weight estimates the cache misses that would occur if the two
//     chunks shared a cache set.
//
// The TRG is built with a recency queue Q of the most recently accessed
// chunks. When chunk c is referenced and found in Q, the edge (c, x) is
// incremented for every entry x ahead of c, because a reference to x
// occurred between two references to c — if they overlapped in a direct-
// mapped cache, c would have missed. Q is capped at queue-threshold total
// bytes (the paper uses twice the cache size): entries that fall off the
// end would have been evicted by capacity anyway, so no relationship is
// recorded for them.
//
// Placement identity: globals, constants, and the stack map to one node per
// object; heap allocations map to one node per XOR call-stack name, because
// that is the unit the custom allocator can steer.
package profile

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/object"
	"repro/internal/trace"
	"repro/internal/trg"
)

// Config controls profiling granularity.
type Config struct {
	// ChunkSize is the placement granularity in bytes (paper: 256).
	ChunkSize int64
	// QueueThreshold caps the total bytes of chunks in the recency queue
	// (paper: 2x the target cache size).
	QueueThreshold int64
	// PopularityCutoff is the fraction of total popularity covered by the
	// popular set in phase 0 (paper: 0.99).
	PopularityCutoff float64

	// SampleWindow/SamplePeriod enable time-sampled TRG construction,
	// the cost reduction the paper floats in section 5.2 ("alternative
	// techniques for gathering this information such as time sampling"):
	// out of every SamplePeriod references, only the first SampleWindow
	// feed the recency queue. Reference counts and object metadata are
	// always complete. Both zero = profile everything.
	SampleWindow uint64
	SamplePeriod uint64

	// Metrics receives recency-queue and TRG instrumentation (nil =
	// disabled). It is runtime wiring, not a profiling parameter: it does
	// not affect results and is never serialized.
	Metrics *metrics.Collector `json:"-"`
}

// DefaultConfig returns the paper's parameters for a cache of cacheSize
// bytes.
func DefaultConfig(cacheSize int64) Config {
	return Config{
		ChunkSize:        trg.DefaultChunkSize,
		QueueThreshold:   2 * cacheSize,
		PopularityCutoff: 0.99,
	}
}

// Validate rejects unusable parameters.
func (c Config) Validate() error {
	if c.ChunkSize <= 0 {
		return fmt.Errorf("profile: chunk size %d <= 0", c.ChunkSize)
	}
	if c.QueueThreshold < c.ChunkSize {
		return fmt.Errorf("profile: queue threshold %d < chunk size %d", c.QueueThreshold, c.ChunkSize)
	}
	if c.PopularityCutoff <= 0 || c.PopularityCutoff > 1 {
		return fmt.Errorf("profile: popularity cutoff %g outside (0,1]", c.PopularityCutoff)
	}
	if (c.SampleWindow == 0) != (c.SamplePeriod == 0) {
		return fmt.Errorf("profile: sample window and period must be set together")
	}
	if c.SamplePeriod > 0 && c.SampleWindow > c.SamplePeriod {
		return fmt.Errorf("profile: sample window %d exceeds period %d", c.SampleWindow, c.SamplePeriod)
	}
	return nil
}

// Profile is the output of a profiling run.
type Profile struct {
	Config Config
	Graph  *trg.Graph

	// NodeOf maps object IDs from the profiled run to placement nodes.
	// Because workload runs are deterministic, global/constant/stack IDs
	// are identical across runs; heap objects are re-bound by XOR name.
	NodeOf []trg.NodeID

	// HeapNode maps XOR names to their placement node.
	HeapNode map[uint64]trg.NodeID

	// TotalRefs is the number of loads+stores profiled.
	TotalRefs uint64
}

// Node returns the placement node for object id, or trg.NoNode.
func (p *Profile) Node(id object.ID) trg.NodeID {
	if int(id) >= len(p.NodeOf) {
		return trg.NoNode
	}
	return p.NodeOf[id]
}

// Profiler consumes the event stream and builds a Profile. It implements
// trace.Handler.
type Profiler struct {
	cfg   Config
	objs  *object.Table
	graph *trg.Graph

	nodeOf   []trg.NodeID
	heapNode map[uint64]trg.NodeID
	allocSeq int

	// recency queue
	entries map[trg.ChunkKey]*qEntry
	head    *qEntry // most recent
	tail    *qEntry
	qBytes  int64

	refs uint64
}

type qEntry struct {
	key        trg.ChunkKey
	size       int64
	prev, next *qEntry
}

// New creates a profiler over the given object table.
func New(cfg Config, objs *object.Table) (*Profiler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Profiler{
		cfg:      cfg,
		objs:     objs,
		graph:    trg.NewGraph(cfg.ChunkSize),
		heapNode: make(map[uint64]trg.NodeID),
		entries:  make(map[trg.ChunkKey]*qEntry),
	}
	p.graph.SetMetrics(cfg.Metrics)
	return p, nil
}

// HandleEvent implements trace.Handler.
func (p *Profiler) HandleEvent(ev trace.Event) {
	switch ev.Kind {
	case trace.Load, trace.Store:
		p.refs++
		nd := p.nodeFor(ev.Obj)
		p.graph.Node(nd).Refs++
		if p.cfg.SamplePeriod > 0 && p.refs%p.cfg.SamplePeriod >= p.cfg.SampleWindow {
			// Time sampling: outside the sampling window the TRG queue
			// is left untouched (but metadata above stays complete).
			return
		}
		p.touchRange(nd, ev.Off, ev.Size)
	case trace.Alloc:
		p.noteAlloc(ev.Obj)
	case trace.Free:
		// Lifetime is tracked on the object table by the emitter; the
		// heap placement node survives for future allocations.
	}
}

// HandleBatch implements trace.BatchHandler: the emitter delivers runs
// of loads and stores in one call, and the profiler consumes them in a
// tight loop without per-event interface dispatch.
func (p *Profiler) HandleBatch(evs []trace.Event) {
	for i := range evs {
		p.HandleEvent(evs[i])
	}
}

// nodeFor resolves (creating if needed) the placement node of object id.
func (p *Profiler) nodeFor(id object.ID) trg.NodeID {
	for int(id) >= len(p.nodeOf) {
		p.nodeOf = append(p.nodeOf, trg.NoNode)
	}
	if nd := p.nodeOf[id]; nd != trg.NoNode {
		return nd
	}
	in := p.objs.Get(id)
	var nd trg.NodeID
	if in.Category == object.Heap {
		nd = p.heapNodeFor(in)
	} else {
		nd = p.graph.AddNode(trg.Node{
			Category: in.Category,
			Name:     in.Name,
			Size:     in.Size,
			Addr:     in.NaturalAddr,
		})
	}
	p.nodeOf[id] = nd
	return nd
}

func (p *Profiler) heapNodeFor(in *object.Info) trg.NodeID {
	if nd, ok := p.heapNode[in.XORName]; ok {
		n := p.graph.Node(nd)
		if in.Size > n.Size {
			n.Size = in.Size
		}
		return nd
	}
	nd := p.graph.AddNode(trg.Node{
		Category:   object.Heap,
		Name:       in.Name,
		Size:       in.Size,
		XORName:    in.XORName,
		AllocOrder: p.allocSeq,
	})
	p.heapNode[in.XORName] = nd
	return nd
}

func (p *Profiler) noteAlloc(id object.ID) {
	in := p.objs.Get(id)
	nd := p.nodeFor(id)
	n := p.graph.Node(nd)
	n.AllocCount++
	p.allocSeq++
	if p.objs.LiveWithXOR(in.XORName) > 1 {
		n.NonUniqueXOR = true
	}
}

// touchRange feeds every chunk covered by [off, off+size) through the
// recency queue.
func (p *Profiler) touchRange(nd trg.NodeID, off, size int64) {
	if size <= 0 {
		size = 1
	}
	n := p.graph.Node(nd)
	first := off / p.cfg.ChunkSize
	last := (off + size - 1) / p.cfg.ChunkSize
	for c := first; c <= last; c++ {
		clen := p.cfg.ChunkSize
		if rem := n.Size - c*p.cfg.ChunkSize; rem < clen {
			clen = rem
		}
		if clen <= 0 {
			clen = 1
		}
		p.touch(trg.MakeChunkKey(nd, int(c)), clen)
	}
}

// touch is the TRG queue step from section 3.2.
func (p *Profiler) touch(key trg.ChunkKey, size int64) {
	if e, ok := p.entries[key]; ok {
		// Record a temporal relationship with every chunk referenced
		// since the last touch of key (the entries ahead of it).
		for x := p.head; x != nil && x != e; x = x.next {
			p.graph.AddWeight(key, x.key, 1)
		}
		p.moveToFront(e)
		return
	}
	e := &qEntry{key: key, size: size}
	p.entries[key] = e
	p.pushFront(e)
	p.qBytes += size
	for p.qBytes > p.cfg.QueueThreshold && p.tail != nil && p.tail != p.head {
		victim := p.tail
		p.unlink(victim)
		delete(p.entries, victim.key)
		p.qBytes -= victim.size
		p.cfg.Metrics.Add(metrics.QueueEvictions, 1)
	}
}

func (p *Profiler) pushFront(e *qEntry) {
	e.prev = nil
	e.next = p.head
	if p.head != nil {
		p.head.prev = e
	}
	p.head = e
	if p.tail == nil {
		p.tail = e
	}
}

func (p *Profiler) unlink(e *qEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		p.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		p.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (p *Profiler) moveToFront(e *qEntry) {
	if p.head == e {
		return
	}
	p.unlink(e)
	p.pushFront(e)
}

// Finish creates nodes for declared-but-unreferenced globals and constants
// (they still need placement slots), computes popularity, and returns the
// completed profile.
func (p *Profiler) Finish() *Profile {
	p.objs.ForEach(func(in *object.Info) {
		if in.Category == object.Global || in.Category == object.Constant {
			p.nodeFor(in.ID)
		}
	})
	p.graph.Finalize(p.cfg.PopularityCutoff)
	return &Profile{
		Config:    p.cfg,
		Graph:     p.graph,
		NodeOf:    p.nodeOf,
		HeapNode:  p.heapNode,
		TotalRefs: p.refs,
	}
}
