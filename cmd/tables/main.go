// Command tables regenerates every table and figure of the paper's
// evaluation section from the workload models.
//
// Usage:
//
//	tables [-json results.json] [-which all|1|2|3|4|5|fig3|random|sweep|hierarchy|classes|prefetch] [-workloads a,b,c] [-scale 1.0]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/ledger"
	"repro/internal/placement"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	which := flag.String("which", "all", "what to print: all,1,2,3,4,5,fig3,random,sweep,hierarchy,classes,prefetch,victim")
	jsonOut := flag.String("json", "", "also write machine-readable results to this file")
	names := flag.String("workloads", "", "comma-separated workload subset (default: all nine)")
	scale := flag.Float64("scale", 1.0, "burst-count multiplier (smaller = faster, noisier)")
	fromLedger := flag.String("from-ledger", "", "re-render the run summary from a ledger JSONL file (no simulation) and exit")
	flag.Parse()

	if *fromLedger != "" {
		if err := renderLedger(*fromLedger); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var ws []workload.Workload
	if *names == "" {
		ws = workload.All()
	} else {
		for _, n := range strings.Split(*names, ",") {
			w, err := workload.Get(strings.TrimSpace(n))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			ws = append(ws, w)
		}
	}

	opts := sim.DefaultOptions()
	opts.TrackPages = true

	wantRandom := *which == "all" || *which == "random"
	layouts := []sim.LayoutKind{sim.LayoutNatural, sim.LayoutCCDP}
	if wantRandom {
		layouts = append(layouts, sim.LayoutRandom)
	}

	// The per-workload pipelines are independent; fan them out.
	scaled := make([]workload.Workload, len(ws))
	for i, w := range ws {
		scaled[i] = scaledWorkload{Workload: w, frac: *scale}
	}
	fmt.Fprintf(os.Stderr, "running %d workloads...\n", len(scaled))
	cmps, errs := core.RunAll(scaled, opts, layouts, 0)
	for _, err := range errs {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := report.WriteJSON(f, cmps); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "results written to %s\n", *jsonOut)
	}

	show := func(key string) bool { return *which == "all" || *which == key }
	if show("1") {
		fmt.Println(report.Table1(cmps))
	}
	if show("2") {
		fmt.Println(report.Table2(cmps))
	}
	if show("3") {
		fmt.Println(report.Table3(cmps))
	}
	if show("4") {
		fmt.Println(report.Table4(cmps))
	}
	if show("5") {
		fmt.Println(report.Table5(cmps))
	}
	if show("fig3") {
		for _, c := range cmps {
			if c.Workload.HeapPlacement() {
				fmt.Println(report.Figure3(c))
			}
		}
	}
	if show("random") {
		fmt.Println(report.RandomTable(cmps))
	}
	if show("sweep") {
		runSweep(*scale)
	}
	if show("hierarchy") {
		runHierarchy(ws, *scale)
	}
	if show("classes") {
		runClasses(ws, *scale)
	}
	if show("prefetch") {
		runPrefetch(ws, *scale)
	}
	if show("victim") {
		runVictim(ws, *scale)
	}
}

// renderLedger re-renders a recorded run's summary table from its ledger
// alone — the offline counterpart of ccdpbench's live summary, producing
// the same numbers from the same eval events.
func renderLedger(path string) error {
	run, err := ledger.ReplayFile(path)
	if err != nil {
		return err
	}
	if rs := run.Start; rs != nil {
		fmt.Printf("ledger: %s run", rs.Tool)
		if rs.SHA != "" {
			fmt.Printf(" @ %s", rs.SHA)
		}
		if rs.Scale != 0 {
			fmt.Printf(", scale %g", rs.Scale)
		}
		fmt.Printf(", %d events\n", run.Events)
	}
	fmt.Print(run.Summary())
	for i := range run.Sweeps {
		fmt.Println()
		fmt.Print(renderSweep(&run.Sweeps[i]))
	}
	if tbl := stageTable("stage latency (span events)", spanAggs(run.Spans)); tbl != "" {
		fmt.Println()
		fmt.Print(tbl)
	}
	for i := range run.Traces {
		fmt.Println()
		fmt.Print(renderTrace(&run.Traces[i]))
	}
	if re := run.End; re != nil {
		fmt.Printf("recorded averages: train %.2f%%, test %.2f%%, wall %v\n",
			re.AvgTrainReductionPct, re.AvgTestReductionPct,
			time.Duration(re.WallNs).Round(time.Millisecond))
	}
	return nil
}

// renderSweep re-renders one recorded sweep event through the same
// report renderers ccdpbench -sweep prints live, so the ledger alone
// reproduces the matrix and Pareto frontier.
func renderSweep(s *ledger.Sweep) string {
	rows := make([]report.SweepRow, len(s.Cells))
	for i, c := range s.Cells {
		rows[i] = report.SweepRow{
			Size: c.Size, Block: c.Block, Assoc: c.Assoc, L2: c.L2, TLB: c.TLB,
			Chunk: c.Chunk, Queue: c.Queue, Cutoff: c.Cutoff, Heap: c.Heap,
			Layout: c.Layout, Bytes: c.Bytes,
			Accesses: c.Accesses, Misses: c.Misses, MissRatePct: c.MissRatePct,
			Pareto: c.Pareto,
		}
	}
	var b strings.Builder
	title := fmt.Sprintf("%s/%s sweep (%d cells, %s engine, %.1f configs/sec)",
		s.Workload, s.Input, len(rows), s.Engine, s.ConfigsPerSec)
	b.WriteString(report.SweepMatrix(title, rows))
	b.WriteString("\n")
	b.WriteString(report.SweepPareto("pareto frontier (miss rate vs cache bytes)", rows))
	if s.Groups > 0 || s.PrepNs > 0 {
		fmt.Fprintf(&b, "prep: groups=%d prep_share_pct=%.1f peak_prep_bytes=%d prep_total_bytes=%d profiles_broadcast=%d profiles_deduped=%d\n",
			s.Groups, s.PrepSharePct, s.PeakPrepBytes, s.PrepBytesTotal,
			s.ProfilesBroadcast, s.ProfilesDeduped)
	}
	return b.String()
}

// stageAgg is one stage's latency census across a ledger's spans.
type stageAgg struct {
	stage string
	count int
	total time.Duration
	max   time.Duration
}

// spanAggs groups per-stage span events (ccdpbench ledgers) by stage.
func spanAggs(spans []ledger.Span) []stageAgg {
	byStage := make(map[string]*stageAgg)
	for _, s := range spans {
		addSpan(byStage, s.Stage, time.Duration(s.WallNs))
	}
	return sortedAggs(byStage)
}

// renderTrace renders one job's sealed span tree (ccdpd ledgers) as the
// same per-stage latency table, headed by the job's identity.
func renderTrace(tr *ledger.Trace) string {
	byStage := make(map[string]*stageAgg)
	for _, s := range tr.Spans {
		addSpan(byStage, s.Stage, time.Duration(s.EndNs-s.StartNs))
	}
	title := "trace"
	if tr.Job != "" {
		title = fmt.Sprintf("trace: %s %s -> %s", tr.Kind, tr.Job, tr.State)
	}
	return stageTable(title, sortedAggs(byStage))
}

func addSpan(byStage map[string]*stageAgg, stage string, d time.Duration) {
	a := byStage[stage]
	if a == nil {
		a = &stageAgg{stage: stage}
		byStage[stage] = a
	}
	a.count++
	a.total += d
	if d > a.max {
		a.max = d
	}
}

// sortedAggs orders the census by total time descending (ties by name),
// putting the stages that dominate the run's wall clock first.
func sortedAggs(byStage map[string]*stageAgg) []stageAgg {
	aggs := make([]stageAgg, 0, len(byStage))
	for _, a := range byStage {
		aggs = append(aggs, *a)
	}
	sort.Slice(aggs, func(i, j int) bool {
		if aggs[i].total != aggs[j].total {
			return aggs[i].total > aggs[j].total
		}
		return aggs[i].stage < aggs[j].stage
	})
	return aggs
}

// stageTable renders a per-stage latency census.
func stageTable(title string, aggs []stageAgg) string {
	if len(aggs) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintln(&b, title)
	fmt.Fprintf(&b, "%-10s %6s %12s %12s %12s\n", "stage", "spans", "total", "avg", "max")
	for _, a := range aggs {
		avg := a.total / time.Duration(a.count)
		fmt.Fprintf(&b, "%-10s %6d %12s %12s %12s\n", a.stage, a.count,
			round(a.total), round(avg), round(a.max))
	}
	return b.String()
}

// round trims latencies to a readable precision without collapsing
// microsecond-scale stages to zero.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(time.Microsecond)
	}
}

// runVictim prints the hardware-vs-software comparison: a small victim
// cache absorbs some of the same conflict misses CCDP removes.
func runVictim(ws []workload.Workload, scale float64) {
	const entries = 4
	base := sim.DefaultOptions()
	rows := make(map[string][4]*sim.EvalResult)
	var order []string
	for _, w := range ws {
		pr, pa, test, err := pipelineFor(w, scale, base)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		var quad [4]*sim.EvalResult
		for i, variant := range []struct {
			kind   sim.LayoutKind
			victim bool
		}{
			{sim.LayoutNatural, false}, {sim.LayoutNatural, true},
			{sim.LayoutCCDP, false}, {sim.LayoutCCDP, true},
		} {
			opts := base
			if variant.victim {
				opts.Cache.VictimEntries = entries
			}
			res, err := sim.EvalPass(w, test, variant.kind, pr, pa.pm, opts, 0)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			quad[i] = res
		}
		rows[w.Name()] = quad
		order = append(order, w.Name())
	}
	fmt.Println(report.VictimTable(rows, order, entries))
}

// scaledWorkload wraps a workload with burst-scaled inputs.
type scaledWorkload struct {
	workload.Workload
	frac float64
}

func (s scaledWorkload) Train() workload.Input { return s.Workload.Train().Scaled(s.frac) }
func (s scaledWorkload) Test() workload.Input  { return s.Workload.Test().Scaled(s.frac) }

// pipelineFor profiles and places one workload at the given scale.
func pipelineFor(w workload.Workload, scale float64, opts sim.Options) (*sim.ProfileResult, *placementArtifacts, workload.Input, error) {
	train, test := w.Train(), w.Test()
	train.Bursts = int(float64(train.Bursts) * scale)
	test.Bursts = int(float64(test.Bursts) * scale)
	pr, err := sim.ProfilePass(w, train, opts)
	if err != nil {
		return nil, nil, test, err
	}
	pm, err := sim.Place(w, pr, opts)
	if err != nil {
		return nil, nil, test, err
	}
	return pr, &placementArtifacts{pm: pm}, test, nil
}

type placementArtifacts struct{ pm *placement.Map }

// runClasses prints the three-C miss breakdown, original vs CCDP.
func runClasses(ws []workload.Workload, scale float64) {
	opts := sim.DefaultOptions()
	opts.Classify = true
	rows := make(map[string][2]*sim.EvalResult)
	var order []string
	for _, w := range ws {
		pr, pa, test, err := pipelineFor(w, scale, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		nat, err := sim.EvalPass(w, test, sim.LayoutNatural, nil, nil, opts, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		ccdp, err := sim.EvalPass(w, test, sim.LayoutCCDP, pr, pa.pm, opts, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		rows[w.Name()] = [2]*sim.EvalResult{nat, ccdp}
		order = append(order, w.Name())
	}
	fmt.Println(report.ClassTable(rows, order))
}

// runPrefetch prints the phase-5 prefetch interaction study.
func runPrefetch(ws []workload.Workload, scale float64) {
	base := sim.DefaultOptions()
	rows := make(map[string][4]*sim.EvalResult)
	var order []string
	for _, w := range ws {
		pr, pa, test, err := pipelineFor(w, scale, base)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		var quad [4]*sim.EvalResult
		for i, variant := range []struct {
			kind sim.LayoutKind
			pf   bool
		}{
			{sim.LayoutNatural, false}, {sim.LayoutNatural, true},
			{sim.LayoutCCDP, false}, {sim.LayoutCCDP, true},
		} {
			opts := base
			opts.Cache.Prefetch = variant.pf
			res, err := sim.EvalPass(w, test, variant.kind, pr, pa.pm, opts, 0)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			quad[i] = res
		}
		rows[w.Name()] = quad
		order = append(order, w.Name())
	}
	fmt.Println(report.PrefetchTable(rows, order))
}

// runHierarchy reproduces the memory-hierarchy extension: the same
// placements evaluated through an L1 + L2 + TLB stack.
func runHierarchy(ws []workload.Workload, scale float64) {
	opts := sim.DefaultOptions()
	hcfg := hierarchy.DefaultConfig()
	rows := make(map[string][2]*sim.HierarchyResult)
	var order []string
	for _, w := range ws {
		train, test := w.Train(), w.Test()
		train.Bursts = int(float64(train.Bursts) * scale)
		test.Bursts = int(float64(test.Bursts) * scale)
		pr, err := sim.ProfilePass(w, train, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		pm, err := sim.Place(w, pr, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		nat, err := sim.EvalHierarchy(w, test, sim.LayoutNatural, nil, nil, hcfg, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		ccdp, err := sim.EvalHierarchy(w, test, sim.LayoutCCDP, pr, pm, hcfg, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		rows[w.Name()] = [2]*sim.HierarchyResult{nat, ccdp}
		order = append(order, w.Name())
	}
	fmt.Println(report.HierarchyTable(rows, order))
}

// runSweep reproduces the section 5.2 study: how a placement targeted at
// one cache geometry fares on others, including an associative cache.
func runSweep(scale float64) {
	targets := []cache.Config{
		{Size: 4 * 1024, BlockSize: 32, Assoc: 1},
		{Size: 8 * 1024, BlockSize: 32, Assoc: 1},
		{Size: 16 * 1024, BlockSize: 32, Assoc: 1},
		{Size: 8 * 1024, BlockSize: 32, Assoc: 2},
	}
	fmt.Println("Section 5.2: placement trained for 8K direct-mapped, evaluated across geometries")
	fmt.Printf("%-10s %-22s %9s %9s %7s\n", "program", "evaluated cache", "natural", "ccdp", "%red")
	for _, name := range []string{"espresso", "compress", "m88ksim"} {
		w, err := workload.Get(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		opts := sim.DefaultOptions()
		train := w.Train()
		train.Bursts = int(float64(train.Bursts) * scale)
		test := w.Test()
		test.Bursts = int(float64(test.Bursts) * scale)

		pr, err := sim.ProfilePass(w, train, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		pm, err := sim.Place(w, pr, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		for _, cc := range targets {
			evalOpts := opts
			evalOpts.Cache = cc
			nat, err := sim.EvalPass(w, test, sim.LayoutNatural, nil, nil, evalOpts, 0)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			ccdp, err := sim.EvalPass(w, test, sim.LayoutCCDP, pr, pm, evalOpts, 0)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			red := 0.0
			if nat.MissRate() > 0 {
				red = 100 * (nat.MissRate() - ccdp.MissRate()) / nat.MissRate()
			}
			fmt.Printf("%-10s %-22s %8.2f%% %8.2f%% %6.1f%%\n",
				name, cc.String(), nat.MissRate(), ccdp.MissRate(), red)
		}
	}
}
