// Command ccdp runs the full cache-conscious data placement pipeline on
// one workload and reports the result, with optional diagnostics about the
// profile, the placement, and the custom allocator's behaviour.
//
// Usage:
//
//	ccdp -workload compress [-v] [-random] [-scale 1.0] [-parallel N]
//	     [-record dir | -replay dir]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cliconfig"
	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/object"
	"repro/internal/persist"
	"repro/internal/placement"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trg"
	"repro/internal/workload"
)

func main() {
	var cc cliconfig.Common
	cc.RegisterParallel(flag.CommandLine)
	cc.RegisterTrace(flag.CommandLine)
	cc.RegisterLedger(flag.CommandLine)
	name := flag.String("workload", "compress", "workload to optimise")
	verbose := flag.Bool("v", false, "print profile/placement diagnostics")
	withRandom := flag.Bool("random", false, "also evaluate the random-layout control")
	scale := flag.Float64("scale", 1.0, "burst-count multiplier")
	loadProfile := flag.String("load-profile", "", "read the profile from this file instead of profiling")
	loadPlacement := flag.String("load-placement", "", "read the placement map from this file instead of placing")
	explainMisses := flag.Bool("explain-misses", false, "run the simulator in attribution mode and print per-set miss heatmaps and top conflict pairs for every evaluated pass")
	flag.Parse()

	w, err := workload.Get(*name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opts := sim.DefaultOptions()
	opts.Parallelism = cc.EffectiveParallel()
	opts.Attribution = *explainMisses
	layouts := []sim.LayoutKind{sim.LayoutNatural, sim.LayoutCCDP}
	if *withRandom {
		layouts = append(layouts, sim.LayoutRandom)
	}
	train, test := w.Train(), w.Test()
	train.Bursts = int(float64(train.Bursts) * *scale)
	test.Bursts = int(float64(test.Bursts) * *scale)

	if (*loadProfile == "") != (*loadPlacement == "") {
		fmt.Fprintln(os.Stderr, "ccdp: -load-profile and -load-placement must be used together")
		os.Exit(2)
	}
	tc, err := cc.TraceConfig()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccdp:", err)
		os.Exit(2)
	}
	if tc.Enabled() && *loadProfile != "" {
		fmt.Fprintln(os.Stderr, "ccdp: -record/-replay/-trace-dir cannot combine with -load-profile")
		os.Exit(2)
	}
	var lw *ledger.Writer
	if cc.Ledger != "" {
		lw, err = ledger.Create(cc.Ledger)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccdp:", err)
			os.Exit(2)
		}
		lw.RunStart(ledger.RunStart{
			Tool: "ccdp", Scale: *scale, Parallelism: opts.Parallelism,
			Workloads: []string{w.Name()}, Cache: opts.Cache.String(),
		})
	}
	start := time.Now()
	var cmp *core.Comparison
	if *loadProfile != "" {
		cmp, err = runFromFiles(w, opts, layouts, []workload.Input{train, test},
			*loadProfile, *loadPlacement)
	} else {
		cmp, err = core.RunExperiment(core.Experiment{
			Workload: w, Options: opts, Layouts: layouts,
			Inputs: []workload.Input{train, test}, Trace: tc, Ledger: lw,
		})
	}
	if err != nil {
		lw.Close()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if cc.TraceDir != "" {
		// Store-managed mode gets the housekeeping pass: pack small
		// shards, enforce -trace-max-bytes, sweep crash debris.
		if err := sim.MaintainTraceDir(tc, nil); err != nil {
			fmt.Fprintln(os.Stderr, "ccdp: trace store maintenance:", err)
			os.Exit(2)
		}
	}
	if lw != nil {
		lw.RunEnd(ledger.RunEnd{
			Workloads:            1,
			AvgTrainReductionPct: cmp.Reduction("train"),
			AvgTestReductionPct:  cmp.Reduction("test"),
			WallNs:               time.Since(start).Nanoseconds(),
		})
		if err := lw.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ccdp: ledger:", err)
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "ledger written:", cc.Ledger)
	}

	fmt.Printf("%s — %s\n\n", w.Name(), w.Description())
	if *verbose {
		printProfile(cmp)
		printPlacement(cmp)
	}
	for _, input := range []string{"train", "test"} {
		fmt.Printf("%s input:\n", input)
		for _, kind := range layouts {
			r := cmp.Result(input, kind)
			if r == nil {
				continue
			}
			fmt.Printf("  %-8s miss %6.2f%%  (stack %5.2f  global %5.2f  heap %5.2f  const %5.2f)",
				kind, r.MissRate(),
				r.Stats.CategoryMissRate(object.Stack),
				r.Stats.CategoryMissRate(object.Global),
				r.Stats.CategoryMissRate(object.Heap),
				r.Stats.CategoryMissRate(object.Constant))
			if kind == sim.LayoutCCDP && w.HeapPlacement() {
				as := r.AllocStats
				fmt.Printf("  [allocs %d hits %d bins %d pref %d brk %d]",
					as.Allocs, as.TableHits, as.BinAllocs, as.PrefPlaced, as.BrkExtends)
			}
			fmt.Println()
		}
		fmt.Printf("  CCDP reduction: %.2f%%\n\n", cmp.Reduction(input))
	}
	if *explainMisses {
		printAttribution(cmp, layouts)
	}
}

// printAttribution renders the miss-attribution view of every evaluated
// pass: the per-set miss heatmap, the hottest sets, and the heaviest
// (victim, evictor) conflict pairs with their object names.
func printAttribution(cmp *core.Comparison, layouts []sim.LayoutKind) {
	for _, input := range []string{"train", "test"} {
		for _, kind := range layouts {
			r := cmp.Result(input, kind)
			if r == nil || r.Attribution == nil {
				continue
			}
			fmt.Printf("=== miss attribution: %s/%s ===\n", input, kind)
			fmt.Print(report.Heatmap(r.Attribution, 64))
			fmt.Printf("hottest sets:\n%s", report.TopSets(r.Attribution, 8))
			fmt.Printf("top conflict pairs:\n%s\n", report.TopConflicts(r.Attribution, r.Objects, 10))
		}
	}
}

func printProfile(cmp *core.Comparison) {
	g := cmp.Profile.Profile.Graph
	fmt.Printf("profile: %v, %d refs\n", g, cmp.Profile.Profile.TotalRefs)
	var popular, heapNodes, nonUnique int
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(trg.NodeID(i))
		if n.Popular {
			popular++
		}
		if n.Category == object.Heap {
			heapNodes++
			if n.NonUniqueXOR {
				nonUnique++
			}
		}
	}
	fmt.Printf("nodes: %d total, %d popular, %d heap names (%d non-unique)\n",
		g.NumNodes(), popular, heapNodes, nonUnique)
}

func printPlacement(cmp *core.Comparison) {
	m := cmp.Placement
	fmt.Printf("placement: %d global slots over %d bytes, stack at %#x, %d heap plans in %d bins, predicted conflict %d\n",
		len(m.GlobalLayout), m.GlobalSegSize, uint64(m.StackStart),
		len(m.HeapPlans), m.NumBins, m.PredictedConflict)
	var withPref, withBin int
	for _, p := range m.HeapPlans {
		if p.PrefOffset != placement.NoPreference {
			withPref++
		}
		if p.Bin >= 0 {
			withBin++
		}
	}
	fmt.Printf("heap plans: %d with preferred offset, %d with bin tag\n\n", withPref, withBin)
}

// runFromFiles evaluates the requested layouts using a profile and
// placement map saved earlier (e.g. by trgdump), the offline-toolchain
// path: no profiling pass runs in this process.
func runFromFiles(w workload.Workload, opts sim.Options, layouts []sim.LayoutKind,
	inputs []workload.Input, profilePath, placementPath string) (*core.Comparison, error) {
	pf, err := os.Open(profilePath)
	if err != nil {
		return nil, err
	}
	defer pf.Close()
	var prof *profile.Profile
	if prof, err = persist.ReadProfile(pf); err != nil {
		return nil, err
	}
	mf, err := os.Open(placementPath)
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	pm, err := persist.ReadPlacement(mf)
	if err != nil {
		return nil, err
	}
	pr := &sim.ProfileResult{Profile: prof}
	cmp := &core.Comparison{
		Workload:  w,
		Options:   opts,
		Profile:   pr,
		Placement: pm,
		Results:   make(map[string]map[sim.LayoutKind]*sim.EvalResult),
	}
	for _, in := range inputs {
		byLayout := make(map[sim.LayoutKind]*sim.EvalResult, len(layouts))
		for _, kind := range layouts {
			res, err := sim.EvalPass(w, in, kind, pr, pm, opts, 0)
			if err != nil {
				return nil, err
			}
			byLayout[kind] = res
		}
		cmp.Results[in.Label] = byLayout
	}
	return cmp, nil
}
