// Command trgdump inspects the profiling and placement artifacts for one
// workload: the Temporal Relationship Graph's heaviest edges, the popular
// set, and the placement decision the optimizer derives from them. It can
// also save the profile, placement map, and raw trace to files for the
// offline toolchain (see cmd/ccdp -load-placement).
//
// Usage:
//
//	trgdump -workload espresso [-top 25] [-scale 1.0]
//	        [-save-profile p.txt] [-save-placement m.txt] [-save-trace t.bin]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/persist"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	name := flag.String("workload", "espresso", "workload to profile")
	top := flag.Int("top", 25, "number of heaviest TRG edges to print")
	scale := flag.Float64("scale", 1.0, "burst-count multiplier")
	saveProfile := flag.String("save-profile", "", "write the profile to this file")
	savePlacement := flag.String("save-placement", "", "write the placement map to this file")
	saveTrace := flag.String("save-trace", "", "write the raw trace to this file")
	flag.Parse()

	w, err := workload.Get(*name)
	if err != nil {
		fatal(err)
	}
	opts := sim.DefaultOptions()
	in := w.Train()
	in.Bursts = int(float64(in.Bursts) * *scale)

	if *saveTrace != "" {
		f, err := os.Create(*saveTrace)
		if err != nil {
			fatal(err)
		}
		if err := sim.RecordTrace(w, in, f, opts); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace written to %s\n", *saveTrace)
	}

	pr, err := sim.ProfilePass(w, in, opts)
	if err != nil {
		fatal(err)
	}
	pm, err := sim.Place(w, pr, opts)
	if err != nil {
		fatal(err)
	}

	fmt.Println(report.TRGSummary(pr.Profile, *top))
	fmt.Println(report.PlacementSummary(pr.Profile, pm))

	if n := len(pm.MergeLog); n > 0 {
		fmt.Printf("phase-6 merge log (%d merges; first %d shown):\n", n, min(n, *top))
		fmt.Printf("%5s %5s %10s %6s %8s\n", "into", "from", "weight", "line", "members")
		for i, step := range pm.MergeLog {
			if i >= *top {
				break
			}
			fmt.Printf("%5d %5d %10d %6d %8d\n",
				step.A, step.B, step.Weight, step.ChosenLine, step.Members)
		}
	}

	if *saveProfile != "" {
		f, err := os.Create(*saveProfile)
		if err != nil {
			fatal(err)
		}
		if err := persist.WriteProfile(f, pr.Profile); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "profile written to %s\n", *saveProfile)
	}
	if *savePlacement != "" {
		f, err := os.Create(*savePlacement)
		if err != nil {
			fatal(err)
		}
		if err := persist.WritePlacement(f, pm); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "placement written to %s\n", *savePlacement)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
