// Command ccdpd is the placement service daemon: a long-running HTTP
// server owning the workload pool, the shared content-addressed trace
// store, and a bounded job worker pool, serving the versioned /v1 job
// API (see internal/server). Typical use:
//
//	ccdpd -addr 127.0.0.1:8344 -trace-dir /tmp/ccdp-trace-store
//	curl -s -X POST 127.0.0.1:8344/v1/jobs -d '{"kind":"eval","workload":"espresso"}'
//	curl -s 127.0.0.1:8344/v1/jobs/job-0001
//	curl -s 127.0.0.1:8344/v1/jobs/job-0001/result
//
// -selftest flips the binary into its load-harness mode: it boots the
// server on a loopback port, drives it at a target QPS for a fixed
// window, and reports throughput and p50/p95/p99 submit-to-result
// latency, exiting 1 if any request failed or none completed.
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, running
// jobs get -shutdown-timeout to finish, the remainder are cancelled.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/benchsuite"
	"repro/internal/cache"
	"repro/internal/cliconfig"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	var cc cliconfig.Common
	cc.RegisterParallel(flag.CommandLine)
	cc.RegisterTrace(flag.CommandLine)
	cc.RegisterLedger(flag.CommandLine)
	cc.RegisterQuiet(flag.CommandLine)
	var (
		addr        = flag.String("addr", "127.0.0.1:8344", "address to serve the /v1 API on")
		workers     = flag.Int("workers", 2, "concurrently running jobs (the job worker pool size)")
		queue       = flag.Int("queue", 16, "queued-but-not-running job capacity; submissions beyond it get 503")
		scale       = flag.Float64("scale", benchsuite.DefaultScale, "default trace scale for jobs that don't set one")
		maxScale    = flag.Float64("max-scale", 1.0, "largest per-request scale accepted")
		maxCells    = flag.Int("max-sweep-cells", 256, "largest expanded sweep grid accepted")
		retain      = flag.Int("retain", 256, "finished jobs kept queryable; beyond this the oldest are evicted and their IDs 404 (negative: keep all)")
		shutdownTO  = flag.Duration("shutdown-timeout", 30*time.Second, "grace period for in-flight requests and running jobs at shutdown")
		selftest    = flag.Bool("selftest", false, "boot the server, run the load harness against it, report QPS and latency percentiles, exit")
		selftestQPS = flag.Float64("selftest-qps", 8, "load-harness submission rate")
		selftestDur = flag.Duration("selftest-duration", 5*time.Second, "load-harness submission window")
		selftestWkl = flag.String("selftest-workload", "espresso", "workload the load-harness jobs evaluate")
		selftestScl = flag.Float64("selftest-scale", 0.02, "trace scale of the load-harness jobs (small: the probe measures the service, not the pipeline)")
	)
	flag.Parse()

	tc, err := cc.TraceConfig()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccdpd:", err)
		return 2
	}
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "ccdpd: "+format+"\n", args...)
	}
	if cc.Quiet {
		logf = nil
	}

	mc := metrics.New()
	var lw *ledger.Writer
	if cc.Ledger != "" {
		if lw, err = ledger.Create(cc.Ledger); err != nil {
			fmt.Fprintln(os.Stderr, "ccdpd:", err)
			return 2
		}
		defer lw.Close()
		lw.RunStart(ledger.RunStart{
			Tool: "ccdpd", Scale: *scale,
			Parallelism: cc.EffectiveParallel(),
			Cache:       cache.DefaultConfig.String(),
		})
	}

	srv := server.New(server.Config{
		Scale:         *scale,
		MaxScale:      *maxScale,
		Parallelism:   cc.EffectiveParallel(),
		Workers:       *workers,
		Queue:         *queue,
		MaxSweepCells: *maxCells,
		RetainJobs:    *retain,
		Trace:         tc,
		Metrics:       mc,
		Logf:          logf,
	})

	listenAddr := *addr
	if *selftest {
		// The harness talks over loopback; never fight for the real port.
		listenAddr = "127.0.0.1:0"
	}
	g, err := server.Listen(listenAddr, srv.Handler())
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccdpd:", err)
		return 2
	}
	fmt.Fprintf(os.Stderr, "ccdpd: serving on http://%s (workers %d, queue %d, parallel %d)\n",
		g.Addr(), *workers, *queue, cc.EffectiveParallel())

	start := time.Now()
	exit := 0
	if *selftest {
		exit = runSelftest(g.Addr(), *selftestWkl, *selftestScl, *selftestQPS, *selftestDur)
	} else {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		fmt.Fprintf(os.Stderr, "ccdpd: %s: draining (timeout %s)\n", s, *shutdownTO)
	}

	// Shutdown order: stop accepting connections, then drain jobs.
	if err := g.Close(*shutdownTO); err != nil {
		fmt.Fprintln(os.Stderr, "ccdpd: listener close:", err)
		if exit == 0 {
			exit = 2
		}
	}
	srv.Close(*shutdownTO)
	if lw != nil {
		lw.Metrics(mc.Snapshot())
		lw.RunEnd(ledger.RunEnd{WallNs: time.Since(start).Nanoseconds()})
		if err := lw.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ccdpd: ledger:", err)
			return 2
		}
	}
	fmt.Fprintf(os.Stderr, "ccdpd: stopped (%d requests, %d jobs done)\n",
		mc.Get(metrics.ServerRequests), mc.Get(metrics.ServerJobsDone))
	return exit
}

// runSelftest drives the load harness against the just-booted server and
// prints the ssbench-style one-line report.
func runSelftest(addr, workload string, scale, qps float64, dur time.Duration) int {
	body := fmt.Sprintf(`{"kind":"eval","workload":%q,"scale":%g}`, workload, scale)
	rep, err := server.RunLoad(context.Background(), server.LoadConfig{
		BaseURL:  "http://" + addr,
		Body:     []byte(body),
		QPS:      qps,
		Duration: dur,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccdpd: selftest:", err)
		return 2
	}
	fmt.Println("selftest:", rep.String())
	if rep.FirstByte != "" {
		fmt.Fprintln(os.Stderr, "ccdpd: selftest first error:", rep.FirstByte)
	}
	if rep.Failed > 0 || rep.OK == 0 {
		fmt.Fprintf(os.Stderr, "ccdpd: selftest FAILED (%d failed, %d ok)\n", rep.Failed, rep.OK)
		return 1
	}
	return 0
}
