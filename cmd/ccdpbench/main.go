// Command ccdpbench runs the reduced-scale benchmark suite (the same one
// bench_test.go drives) with full pipeline instrumentation, writes a
// versioned machine-readable artifact, and optionally gates the result
// against a committed baseline.
//
// Exit status: 0 on success, 1 when the baseline gate fails, 2 on any
// other error. CI runs:
//
//	go run ./cmd/ccdpbench -baseline bench_baseline.json
//
// and a regression in the headline miss-rate reduction (or any single
// workload's) beyond tolerance fails the build. Refresh the baseline
// after an intentional change with:
//
//	go run ./cmd/ccdpbench -update-baseline
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/benchsuite"
	"repro/internal/cache"
	"repro/internal/cliconfig"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/report"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var cc cliconfig.Common
	cc.RegisterParallel(flag.CommandLine)
	cc.RegisterTrace(flag.CommandLine)
	cc.RegisterLedger(flag.CommandLine)
	cc.RegisterDebug(flag.CommandLine)
	cc.RegisterQuiet(flag.CommandLine)
	var (
		scale        = flag.Float64("scale", benchsuite.DefaultScale, "trace scale (fraction of full burst counts)")
		workloads    = flag.String("workloads", "", "comma-separated workload subset (default: all nine)")
		out          = flag.String("out", "", "artifact path (default BENCH_<sha>.json)")
		baselinePath = flag.String("baseline", "", "baseline artifact to gate against (empty = no gate)")
		updateBase   = flag.String("update-baseline", "", "write a fresh baseline to this path and exit (skips the artifact and gate)")
		headlineTol  = flag.Float64("tolerance", benchsuite.DefaultTolerances.Headline, "max allowed drop in avg test reduction, percentage points")
		perWorkTol   = flag.Float64("workload-tolerance", benchsuite.DefaultTolerances.PerWorkload, "max allowed per-workload drop, percentage points")
		sha          = flag.String("sha", "", "commit id stamped into the artifact (default: $GITHUB_SHA, then git HEAD, then \"dev\")")
		seqCompare   = flag.Bool("seq-compare", true, "when -parallel > 1, also time a sequential run, record the speedup, and verify the results are byte-identical")
		minSpeedup   = flag.Float64("min-speedup", 0, "fail (exit 1) when the seq-compare speedup falls below this on a machine with >= 4 CPUs (0 = no gate; skipped with a notice on smaller machines)")
		traceMaint   = flag.Bool("trace-maintain", true, "run trace store maintenance (bundle packing, size-cap eviction, crash-debris sweep) after the suite")
		requireHits  = flag.Bool("require-store-hits", false, "fail (exit 1) when any trace had to be recorded this run, i.e. the store was not fully warm")
		replayComp   = flag.Bool("replay-compare", false, "with -record/-replay/-trace-dir, also run the suite live and verify the results are byte-identical")
		quiet        = flag.Bool("q", false, "suppress the per-workload table")

		sweepMode    = flag.Bool("sweep", false, "run a layout sweep (decode-once grid evaluation) instead of the benchmark suite")
		sweepGridF   = flag.String("sweep-grid", "", "JSON grid file describing the sweep axes (overrides the -sweep-* axis flags)")
		sweepWkld    = flag.String("sweep-workload", "compress", "workload the sweep replays")
		sweepSizes   = flag.String("sweep-sizes", "", "comma-separated L1 cache sizes in bytes (default 8192)")
		sweepBlocks  = flag.String("sweep-blocks", "", "comma-separated L1 line sizes in bytes (default 32)")
		sweepAssocs  = flag.String("sweep-assocs", "", "comma-separated L1 associativities (default 1)")
		sweepChunks  = flag.String("sweep-chunks", "", "comma-separated profiling chunk sizes (default: derived from cache size)")
		sweepQueues  = flag.String("sweep-queues", "", "comma-separated recency-queue thresholds (default: derived from cache size)")
		sweepCutoffs = flag.String("sweep-cutoffs", "", "comma-separated popularity cutoffs, fraction of references (default 0 = keep every node)")
		sweepLayouts = flag.String("sweep-layouts", "", "comma-separated layout variants (default natural,ccdp)")
		sweepHeaps   = flag.String("sweep-heaps", "", "comma-separated heap placement fits: first,temporal (default first)")
		sweepL2      = flag.String("sweep-l2", "", "semicolon-separated L2 points as size/block/assoc/tlb (e.g. 98304/32/3/32); each multiplies the grid by an L1+L2 hierarchy variant")
		sweepComp    = flag.Bool("sweep-compare", true, "also run every cell as an independent replay, verify byte-identical results, and record the speedup")
		sweepMinSpd  = flag.Float64("sweep-min-speedup", 0, "with -sweep-compare, fail (exit 1) when the shared-vs-independent sweep speedup falls below this on a machine with >= 4 CPUs (0 = no gate; skipped with a notice on smaller machines)")
	)
	flag.Parse()

	var names []string
	if *workloads != "" {
		names = strings.Split(*workloads, ",")
	}
	parallel := cc.EffectiveParallel()
	tc, err := cc.TraceConfig()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccdpbench:", err)
		return 2
	}
	if *replayComp && !tc.Enabled() {
		fmt.Fprintln(os.Stderr, "ccdpbench: -replay-compare requires -record, -replay, or -trace-dir")
		return 2
	}
	if *requireHits && !tc.Enabled() {
		fmt.Fprintln(os.Stderr, "ccdpbench: -require-store-hits requires -record, -replay, or -trace-dir")
		return 2
	}

	if *sweepMode {
		return runSweep(sweepFlags{
			grid: *sweepGridF, workload: *sweepWkld,
			sizes: *sweepSizes, blocks: *sweepBlocks, assocs: *sweepAssocs,
			chunks: *sweepChunks, queues: *sweepQueues, cutoffs: *sweepCutoffs,
			layouts: *sweepLayouts, heaps: *sweepHeaps,
			l2: *sweepL2, compare: *sweepComp, minSpeedup: *sweepMinSpd,
			scale: *scale, parallel: parallel, trace: tc,
			traceMaint: *traceMaint, requireHits: *requireHits,
			sha: resolveSHA(*sha), out: *out, ledgerPath: cc.Ledger,
			quiet: cc.Quiet,
		})
	}

	mc := metrics.New()
	total := len(names)
	if total == 0 {
		total = len(workload.Names())
	}
	prog := benchsuite.NewProgress(total)

	var lw *ledger.Writer
	if cc.Ledger != "" {
		var err error
		lw, err = ledger.Create(cc.Ledger)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccdpbench:", err)
			return 2
		}
		defer lw.Close()
		lw.RunStart(ledger.RunStart{
			Tool: "ccdpbench", SHA: resolveSHA(*sha), Scale: *scale,
			Parallelism: parallel, Workloads: names,
			Cache: cache.DefaultConfig.String(),
		})
	}
	if cc.DebugAddr != "" {
		dbg, err := server.Listen(cc.DebugAddr, benchsuite.DebugHandler(mc, prog))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccdpbench:", err)
			return 2
		}
		// Drain in-flight snapshot/pprof requests before exiting instead
		// of yanking the listener out from under them.
		defer func() {
			if err := dbg.Close(2 * time.Second); err != nil {
				fmt.Fprintln(os.Stderr, "ccdpbench: debug endpoint close:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "debug endpoint: http://%s/debug/snapshot\n", dbg.Addr())
	}
	stopProgress := startProgressLine(prog, cc.Quiet)

	start := time.Now()
	cmps, effScale, err := benchsuite.Config{
		Scale: *scale, Workloads: names, Metrics: mc, Parallelism: parallel,
		Trace: tc, Ledger: lw, Progress: prog,
	}.Run()
	stopProgress()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccdpbench:", err)
		return 2
	}
	wall := time.Since(start)
	if tc.Enabled() && *traceMaint {
		// Maintenance before the snapshot, so pack/evict counters land in
		// the artifact alongside the run's hit/miss accounting.
		if err := sim.MaintainTraceDir(tc, mc); err != nil {
			fmt.Fprintln(os.Stderr, "ccdpbench: trace store maintenance:", err)
			return 2
		}
	}
	art := benchsuite.BuildArtifact(resolveSHA(*sha), effScale, cmps, mc.Snapshot())
	art.Timing = &benchsuite.Timing{
		Parallelism:  parallel,
		WallNanos:    wall.Nanoseconds(),
		ProfileNanos: mc.StageTotal(metrics.StageProfile).Nanoseconds(),
		ReplayNanos:  mc.StageTotal(metrics.StageReplay).Nanoseconds(),
	}
	if lw != nil {
		lw.Metrics(mc.Snapshot())
		lw.RunEnd(ledger.RunEnd{
			Workloads:            len(art.Workloads),
			AvgTrainReductionPct: art.AvgTrainReductionPct,
			AvgTestReductionPct:  art.AvgTestReductionPct,
			WallNs:               wall.Nanoseconds(),
		})
		if err := lw.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ccdpbench: ledger:", err)
			return 2
		}
		fmt.Fprintln(os.Stderr, "ledger written:", cc.Ledger)
	}

	if *replayComp {
		liveMC := metrics.New()
		liveStart := time.Now()
		liveCmps, _, err := benchsuite.Config{Scale: *scale, Workloads: names, Metrics: liveMC, Parallelism: parallel}.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccdpbench: live comparison run:", err)
			return 2
		}
		liveWall := time.Since(liveStart)
		// The trace pipeline's contract is byte-identical artifacts; hold
		// it to that on every run, not just in the test suite.
		liveArt := benchsuite.BuildArtifact(art.SHA, effScale, liveCmps, metrics.Snapshot{})
		if err := assertSameResults(art, liveArt); err != nil {
			fmt.Fprintln(os.Stderr, "ccdpbench: replay vs live:", err)
			return 2
		}
		fmt.Printf("traced: %v vs live %v (replay stage %v, results identical)\n",
			wall.Round(time.Millisecond), liveWall.Round(time.Millisecond),
			time.Duration(art.Timing.ReplayNanos).Round(time.Millisecond))
	}

	if parallel > 1 && *seqCompare {
		seqMC := metrics.New()
		seqStart := time.Now()
		seqCmps, _, err := benchsuite.Config{Scale: *scale, Workloads: names, Metrics: seqMC, Parallelism: 1}.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccdpbench: sequential comparison run:", err)
			return 2
		}
		seqWall := time.Since(seqStart)
		art.Timing.SequentialNanos = seqWall.Nanoseconds()
		art.Timing.Speedup = float64(seqWall) / float64(wall)
		art.Timing.SequentialProfileNanos = seqMC.StageTotal(metrics.StageProfile).Nanoseconds()
		// The parallel engine's contract is bit-identical results; hold it
		// to that on every run, not just in the test suite.
		seqArt := benchsuite.BuildArtifact(art.SHA, effScale, seqCmps, metrics.Snapshot{})
		if err := assertSameResults(art, seqArt); err != nil {
			fmt.Fprintln(os.Stderr, "ccdpbench:", err)
			return 2
		}
		fmt.Printf("parallel %d: %v vs sequential %v (speedup %.2fx, results identical)\n",
			parallel, wall.Round(time.Millisecond), seqWall.Round(time.Millisecond), art.Timing.Speedup)
		if *minSpeedup > 0 {
			switch {
			case runtime.NumCPU() < 4:
				fmt.Printf("speedup gate skipped: %d CPUs < 4 (would require >= %.2fx)\n",
					runtime.NumCPU(), *minSpeedup)
			case art.Timing.Speedup < *minSpeedup:
				fmt.Fprintf(os.Stderr, "GATE FAIL: speedup %.2fx below required %.2fx on %d CPUs\n",
					art.Timing.Speedup, *minSpeedup, runtime.NumCPU())
				return 1
			default:
				fmt.Printf("speedup gate OK: %.2fx >= %.2fx\n", art.Timing.Speedup, *minSpeedup)
			}
		}
	} else if *minSpeedup > 0 {
		fmt.Println("speedup gate skipped: requires -parallel > 1 with -seq-compare")
	}

	storeExit := 0
	if tc.Enabled() {
		// One awk-friendly line per run: CI sums recorded= across
		// concurrent processes to verify the claim protocol.
		fmt.Printf("trace store: hits=%d recorded=%d waits=%d evicted=%d packed=%d written=%dB read=%dB\n",
			mc.Get(metrics.StoreHits), mc.Get(metrics.StoreMisses),
			mc.Get(metrics.StoreClaimWaits), mc.Get(metrics.StoreEvictions),
			mc.Get(metrics.StorePacked), mc.Get(metrics.StoreBytesWritten),
			mc.Get(metrics.StoreBytesRead))
		if *requireHits && mc.Get(metrics.StoreMisses) > 0 {
			fmt.Fprintf(os.Stderr, "GATE FAIL: %d traces recorded with -require-store-hits (store was not fully warm)\n",
				mc.Get(metrics.StoreMisses))
			storeExit = 1
		}
	}

	if !*quiet {
		printSummary(art, wall, mc)
	}

	if *updateBase != "" {
		if err := art.Baseline().WriteFile(*updateBase); err != nil {
			fmt.Fprintln(os.Stderr, "ccdpbench:", err)
			return 2
		}
		fmt.Println("baseline written:", *updateBase)
		return storeExit
	}

	outPath := *out
	if outPath == "" {
		outPath = "BENCH_" + art.SHA + ".json"
	}
	if err := art.WriteFile(outPath); err != nil {
		fmt.Fprintln(os.Stderr, "ccdpbench:", err)
		return 2
	}
	fmt.Println("artifact written:", outPath)

	if *baselinePath == "" {
		return storeExit
	}
	base, err := benchsuite.LoadArtifact(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccdpbench:", err)
		return 2
	}
	gate := benchsuite.Gate(base, art, benchsuite.Tolerances{Headline: *headlineTol, PerWorkload: *perWorkTol})
	for _, note := range gate.Notes {
		fmt.Println("note:", note)
	}
	if !gate.OK() {
		for _, f := range gate.Failures {
			fmt.Fprintln(os.Stderr, "GATE FAIL:", f)
		}
		return 1
	}
	fmt.Printf("gate OK: avg test reduction %.2f%% (baseline %.2f%%, tolerance %.2f)\n",
		art.AvgTestReductionPct, base.AvgTestReductionPct, *headlineTol)
	return storeExit
}

// sweepFlags carries the parsed -sweep-* flag set into runSweep.
type sweepFlags struct {
	grid       string
	workload   string
	sizes      string
	blocks     string
	assocs     string
	chunks     string
	queues     string
	cutoffs    string
	layouts    string
	heaps      string
	l2         string
	compare    bool
	minSpeedup float64

	scale       float64
	parallel    int
	trace       sim.TraceConfig
	traceMaint  bool
	requireHits bool
	sha         string
	out         string
	ledgerPath  string
	quiet       bool
}

// runSweep is the -sweep mode: expand the grid, prepare profiles and
// placements once, run the decode-once engine, render the matrix /
// Pareto / axis tables, and (with -sweep-compare) hold the engine to
// byte-identical results against independent per-cell replays while
// measuring the speedup. Inputs come from benchsuite.ScaledInputs so
// store-backed sweeps share trace keys with suite runs over the same
// -scale.
func runSweep(f sweepFlags) int {
	w, err := workload.Get(f.workload)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccdpbench:", err)
		return 2
	}
	var grid sweep.Grid
	if f.grid != "" {
		grid, err = sweep.LoadGridFile(f.grid)
	} else {
		grid, err = sweep.ParseAxes(f.sizes, f.blocks, f.assocs, f.chunks, f.queues, f.cutoffs, f.layouts, f.heaps, f.l2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccdpbench:", err)
		return 2
	}

	mc := metrics.New()
	opts := sim.DefaultOptions()
	opts.Parallelism = f.parallel
	opts.Metrics = mc

	onProg, stopProg := startSweepProgressLine(f.quiet)
	defer stopProg()
	inputs := benchsuite.ScaledInputs(w, f.scale)
	prep, err := sweep.NewPrep(sweep.Request{
		Workload: w, Train: inputs[0], Test: inputs[1],
		Grid: grid, Options: opts, Trace: f.trace,
		OnProgress: onProg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccdpbench: sweep prep:", err)
		return 2
	}

	res, err := prep.RunShared(f.parallel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ccdpbench: sweep:", err)
		return 2
	}
	if f.trace.Enabled() && f.traceMaint {
		if err := sim.MaintainTraceDir(f.trace, mc); err != nil {
			fmt.Fprintln(os.Stderr, "ccdpbench: trace store maintenance:", err)
			return 2
		}
	}

	var indNanos int64
	var indRate, speedup float64
	if f.compare {
		ind, err := prep.RunIndependent(f.parallel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccdpbench: independent sweep:", err)
			return 2
		}
		if err := sweep.DiffResults(res, ind); err != nil {
			fmt.Fprintln(os.Stderr, "ccdpbench: shared vs independent:", err)
			return 2
		}
		indNanos = ind.WallNanos
		indRate = ind.ConfigsPerSec()
		speedup = float64(ind.WallNanos) / float64(res.WallNanos)
	}
	stopProg()
	gateExit := 0
	if f.compare && f.minSpeedup > 0 {
		switch {
		case runtime.NumCPU() < 4:
			fmt.Printf("sweep speedup gate skipped: %d CPUs < 4 (would require >= %.2fx)\n",
				runtime.NumCPU(), f.minSpeedup)
		case speedup < f.minSpeedup:
			fmt.Fprintf(os.Stderr, "GATE FAIL: sweep speedup %.2fx below required %.2fx on %d CPUs\n",
				speedup, f.minSpeedup, runtime.NumCPU())
			gateExit = 1
		default:
			fmt.Printf("sweep speedup gate OK: %.2fx >= %.2fx\n", speedup, f.minSpeedup)
		}
	} else if f.minSpeedup > 0 {
		fmt.Fprintln(os.Stderr, "ccdpbench: -sweep-min-speedup needs -sweep-compare")
		return 2
	}

	rows := res.Rows()
	title := fmt.Sprintf("%s/%s sweep (%d cells)", res.Workload, res.Input, len(rows))
	fmt.Print(report.SweepMatrix(title, rows))
	fmt.Println()
	fmt.Print(report.SweepPareto("pareto frontier (miss rate vs cache bytes)", rows))
	if axes := report.SweepAxes("per-axis marginal deltas", rows); axes != "" {
		fmt.Println()
		fmt.Print(axes)
	}

	// One awk-friendly line, the sweep twin of "trace store:" below.
	fmt.Printf("sweep: cells=%d groups=%d events=%d batches=%d configs_per_sec=%.1f decode_share_pct=%.1f prep_share_pct=%.1f peak_prep_bytes=%d prep_total_bytes=%d profiles_broadcast=%d profiles_deduped=%d independent_configs_per_sec=%.1f speedup=%.2f\n",
		len(res.Cells), res.Groups, res.Events, res.Batches,
		res.ConfigsPerSec(), res.DecodeSharePct(),
		res.PrepSharePct(), res.PeakPrepBytes, res.PrepBytesTotal,
		res.ProfilesBroadcast, res.ProfilesDeduped, indRate, speedup)

	storeExit := 0
	if f.trace.Enabled() {
		fmt.Printf("trace store: hits=%d recorded=%d waits=%d evicted=%d packed=%d written=%dB read=%dB\n",
			mc.Get(metrics.StoreHits), mc.Get(metrics.StoreMisses),
			mc.Get(metrics.StoreClaimWaits), mc.Get(metrics.StoreEvictions),
			mc.Get(metrics.StorePacked), mc.Get(metrics.StoreBytesWritten),
			mc.Get(metrics.StoreBytesRead))
		if f.requireHits && mc.Get(metrics.StoreMisses) > 0 {
			fmt.Fprintf(os.Stderr, "GATE FAIL: %d traces recorded with -require-store-hits (store was not fully warm)\n",
				mc.Get(metrics.StoreMisses))
			storeExit = 1
		}
	}

	if f.ledgerPath != "" {
		lw, err := ledger.Create(f.ledgerPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ccdpbench:", err)
			return 2
		}
		lw.RunStart(ledger.RunStart{
			Tool: "ccdpbench", SHA: f.sha, Scale: f.scale,
			Parallelism: f.parallel, Workloads: []string{f.workload},
			Cache: cache.DefaultConfig.String(),
		})
		lw.Sweep(sweepEvent(res, rows))
		lw.Metrics(mc.Snapshot())
		lw.RunEnd(ledger.RunEnd{WallNs: res.WallNanos})
		if err := lw.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "ccdpbench: ledger:", err)
			return 2
		}
		fmt.Fprintln(os.Stderr, "ledger written:", f.ledgerPath)
	}

	art := benchsuite.BuildArtifact(f.sha, f.scale, nil, mc.Snapshot())
	art.Timing = &benchsuite.Timing{
		Parallelism:                   f.parallel,
		WallNanos:                     res.WallNanos,
		SweepCells:                    len(res.Cells),
		SweepWallNanos:                res.WallNanos,
		SweepIndependentNanos:         indNanos,
		SweepConfigsPerSec:            res.ConfigsPerSec(),
		SweepIndependentConfigsPerSec: indRate,
		SweepSpeedup:                  speedup,
		SweepDecodeSharePct:           res.DecodeSharePct(),
		SweepPrepNanos:                res.PrepNanos,
		SweepPrepSharePct:             res.PrepSharePct(),
		SweepPeakPrepBytes:            res.PeakPrepBytes,
		SweepPrepBytesTotal:           res.PrepBytesTotal,
		SweepGroups:                   res.Groups,
		SweepProfilesBroadcast:        res.ProfilesBroadcast,
		SweepProfilesDeduped:          res.ProfilesDeduped,
	}
	outPath := f.out
	if outPath == "" {
		outPath = "BENCH_" + f.sha + "_sweep.json"
	}
	if err := art.WriteFile(outPath); err != nil {
		fmt.Fprintln(os.Stderr, "ccdpbench:", err)
		return 2
	}
	fmt.Println("artifact written:", outPath)
	if gateExit != 0 {
		return gateExit
	}
	return storeExit
}

// sweepEvent converts a sweep result into its ledger payload.
func sweepEvent(res *sweep.Result, rows []report.SweepRow) ledger.Sweep {
	engine := "independent"
	if res.Shared {
		engine = "shared"
	}
	s := ledger.Sweep{
		Workload: res.Workload, Input: res.Input, Engine: engine,
		WallNs: res.WallNanos, DecodeNs: res.DecodeNanos,
		Batches: res.Batches, Events: res.Events,
		ConfigsPerSec: res.ConfigsPerSec(), DecodeSharePct: res.DecodeSharePct(),
		PrepNs: res.PrepNanos, PrepSharePct: res.PrepSharePct(),
		PeakPrepBytes: res.PeakPrepBytes, PrepBytesTotal: res.PrepBytesTotal,
		ProfilesBroadcast: res.ProfilesBroadcast, ProfilesDeduped: res.ProfilesDeduped,
		Groups: res.Groups,
	}
	for _, r := range rows {
		s.Cells = append(s.Cells, ledger.SweepCell{
			Size: r.Size, Block: r.Block, Assoc: r.Assoc, L2: r.L2, TLB: r.TLB,
			Chunk: r.Chunk, Queue: r.Queue, Cutoff: r.Cutoff, Heap: r.Heap,
			Layout: r.Layout, Bytes: r.Bytes,
			Accesses: r.Accesses, Misses: r.Misses, MissRatePct: r.MissRatePct,
			Pareto: r.Pareto,
		})
	}
	return s
}

// startProgressLine spawns the stderr progress ticker — workloads done,
// in-flight stages, elapsed — and returns a function that stops it and
// clears the line (idempotent). With quiet set it does nothing.
func startProgressLine(prog *benchsuite.Progress, quiet bool) func() {
	if quiet {
		return func() {}
	}
	done := make(chan struct{})
	cleared := make(chan struct{})
	go func() {
		defer close(cleared)
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		var width int
		for {
			select {
			case <-done:
				if width > 0 {
					fmt.Fprintf(os.Stderr, "\r%*s\r", width, "")
				}
				return
			case <-tick.C:
				line := prog.Line()
				if len(line) > width {
					width = len(line)
				}
				fmt.Fprintf(os.Stderr, "\r%-*s", width, line)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-cleared
		})
	}
}

// startSweepProgressLine is startProgressLine's -sweep twin: it returns
// the sweep.Request.OnProgress hook (which just records the latest
// snapshot) and a stop function, with a ticker rendering the snapshot —
// phase, groups carved, cells collected, events decoded — to stderr.
// Sampling on a ticker rather than printing per callback keeps the hook
// cheap enough to sit on the engine's batch boundaries. With quiet set
// the hook is nil and the engine skips progress tracking entirely.
func startSweepProgressLine(quiet bool) (func(sweep.Progress), func()) {
	if quiet {
		return nil, func() {}
	}
	var (
		mu  sync.Mutex
		cur sweep.Progress
	)
	onProg := func(p sweep.Progress) {
		mu.Lock()
		cur = p
		mu.Unlock()
	}
	start := time.Now()
	done := make(chan struct{})
	cleared := make(chan struct{})
	go func() {
		defer close(cleared)
		tick := time.NewTicker(500 * time.Millisecond)
		defer tick.Stop()
		var width int
		for {
			select {
			case <-done:
				if width > 0 {
					fmt.Fprintf(os.Stderr, "\r%*s\r", width, "")
				}
				return
			case <-tick.C:
				mu.Lock()
				p := cur
				mu.Unlock()
				line := fmt.Sprintf("sweep [%s] groups %d/%d  cells %d/%d  events %d  %s",
					p.Phase, p.GroupsDone, p.Groups, p.CellsDone, p.CellsTotal,
					p.Events, time.Since(start).Round(time.Second))
				if p.Phase == "" {
					line = fmt.Sprintf("sweep starting  %s", time.Since(start).Round(time.Second))
				}
				if len(line) > width {
					width = len(line)
				}
				fmt.Fprintf(os.Stderr, "\r%-*s", width, line)
			}
		}
	}()
	var once sync.Once
	return onProg, func() {
		once.Do(func() {
			close(done)
			<-cleared
		})
	}
}

// assertSameResults compares two artifacts' result sections (everything
// but observability and timing) byte for byte.
func assertSameResults(a, b *benchsuite.Artifact) error {
	strip := func(a *benchsuite.Artifact) ([]byte, error) {
		c := *a
		c.Metrics = metrics.Snapshot{}
		c.Timing = nil
		return json.Marshal(&c)
	}
	ab, err := strip(a)
	if err != nil {
		return err
	}
	bb, err := strip(b)
	if err != nil {
		return err
	}
	if !bytes.Equal(ab, bb) {
		return fmt.Errorf("parallel and sequential results differ:\nparallel:   %s\nsequential: %s", ab, bb)
	}
	return nil
}

// resolveSHA picks the commit id for the artifact name: flag, CI env, git.
func resolveSHA(flagSHA string) string {
	if flagSHA != "" {
		return short(flagSHA)
	}
	if env := os.Getenv("GITHUB_SHA"); env != "" {
		return short(env)
	}
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		if s := strings.TrimSpace(string(out)); s != "" {
			return s
		}
	}
	return "dev"
}

func short(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	return sha
}

func printSummary(a *benchsuite.Artifact, elapsed time.Duration, mc *metrics.Collector) {
	fmt.Printf("suite: %d workloads at scale %g in %v\n", len(a.Workloads), a.Scale, elapsed.Round(time.Millisecond))
	fmt.Printf("%-12s %10s %10s\n", "workload", "train red%", "test red%")
	for _, wr := range a.Workloads {
		fmt.Printf("%-12s %10.2f %10.2f\n", wr.Name, wr.TrainReductionPct, wr.TestReductionPct)
	}
	fmt.Printf("%-12s %10.2f %10.2f\n", "avg", a.AvgTrainReductionPct, a.AvgTestReductionPct)
	fmt.Printf("pipeline: %d trace events, %d TRG edges, %d queue evictions, %d sim accesses\n",
		mc.Get(metrics.TraceEvents), mc.Get(metrics.TRGEdges),
		mc.Get(metrics.QueueEvictions), mc.Get(metrics.SimAccesses))
	for _, st := range []metrics.Stage{metrics.StageProfile, metrics.StagePlace, metrics.StageEval, metrics.StageReplay} {
		if mc.StageCount(st) == 0 {
			continue
		}
		fmt.Printf("stage %-8s %3d runs, total %v\n", st, mc.StageCount(st),
			mc.StageTotal(st).Round(time.Millisecond))
	}
}
