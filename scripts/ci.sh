#!/usr/bin/env sh
# Local mirror of .github/workflows/ci.yml: run every CI gate in one shot.
# Usage: scripts/ci.sh [fast]
#   fast  skips the race and fuzz jobs (the slow half).
set -eu

cd "$(dirname "$0")/.."

echo "==> build"
go build ./...

echo "==> vet"
go vet ./...

echo "==> gofmt"
out="$(gofmt -l .)"
if [ -n "$out" ]; then
    echo "gofmt needed on:" >&2
    echo "$out" >&2
    exit 1
fi

echo "==> test"
go test ./...

if [ "${1:-}" != "fast" ]; then
    echo "==> race (exec, profile, core, sim, trace, metrics, benchsuite)"
    go test -race ./internal/exec/... ./internal/profile/... ./internal/core/... ./internal/sim/... ./internal/trace/... ./internal/metrics/... ./internal/benchsuite/...

    echo "==> fuzz smoke (persist, trace)"
    go test -fuzz=FuzzReadProfile -fuzztime=15s ./internal/persist
    go test -fuzz=FuzzReadPlacement -fuzztime=15s ./internal/persist
    go test -run=NONE -fuzz=FuzzTraceReader -fuzztime=15s ./internal/trace
fi

echo "==> bench gate"
go run ./cmd/ccdpbench -baseline bench_baseline.json -out "BENCH_local.json"

echo "==> replay determinism"
go run ./cmd/ccdpbench -record /tmp/ccdp-traces-ci -replay-compare -q -out /tmp/bench_replay.json

echo "==> multi-core speedup gate"
go run ./cmd/ccdpbench -parallel 4 -min-speedup 1.5 -q -out /tmp/bench_speedup.json

echo "CI OK"
