#!/usr/bin/env sh
# Local mirror of .github/workflows/ci.yml: run every CI gate in one shot.
# Keep the two in sync when adding or changing steps (ci.yml carries the
# same cross-pointer).
# Usage: scripts/ci.sh [fast]
#   fast  skips the race and fuzz jobs (the slow half).
set -eu

cd "$(dirname "$0")/.."

echo "==> build"
go build ./...

echo "==> vet"
go vet ./...

echo "==> gofmt"
out="$(gofmt -l .)"
if [ -n "$out" ]; then
    echo "gofmt needed on:" >&2
    echo "$out" >&2
    exit 1
fi

echo "==> test"
go test ./...

# CI additionally runs the build-test job on a go-version matrix
# (1.22.x, 1.23.x); locally you test whatever toolchain is installed.

echo "==> govulncheck"
if command -v govulncheck > /dev/null 2>&1; then
    govulncheck ./...
else
    echo "govulncheck not installed; skipping (CI runs it)"
fi

if [ "${1:-}" != "fast" ]; then
    echo "==> race (exec, profile, core, sim, sweep, store, trace, metrics, benchsuite, ledger, telemetry, server)"
    go test -race ./internal/exec/... ./internal/profile/... ./internal/core/... ./internal/sim/... ./internal/sweep/... ./internal/store/... ./internal/trace/... ./internal/metrics/... ./internal/benchsuite/... ./internal/ledger/... ./internal/telemetry/... ./internal/server/...

    echo "==> fuzz smoke (persist, trace, store)"
    go test -fuzz=FuzzReadProfile -fuzztime=15s ./internal/persist
    go test -fuzz=FuzzReadPlacement -fuzztime=15s ./internal/persist
    go test -run=NONE -fuzz=FuzzTraceReader -fuzztime=15s ./internal/trace
    go test -run=NONE -fuzz=FuzzFrameReader -fuzztime=15s ./internal/store
fi

echo "==> bench gate"
go run ./cmd/ccdpbench -baseline bench_baseline.json -out "BENCH_local.json" -ledger "LEDGER_local.jsonl"

echo "==> re-render ledger"
go run ./cmd/tables -from-ledger "LEDGER_local.jsonl"

echo "==> debug endpoint smoke"
go build -o /tmp/ccdpbench-ci ./cmd/ccdpbench
/tmp/ccdpbench-ci -scale 0.2 -seq-compare=false -q -debug-addr 127.0.0.1:18080 -out /tmp/bench_debug.json &
pid=$!
ok=""
for i in $(seq 1 50); do
    if curl -sf http://127.0.0.1:18080/debug/snapshot | grep -q '"total"'; then
        curl -sf -o /dev/null http://127.0.0.1:18080/debug/pprof/
        curl -sf http://127.0.0.1:18080/metrics | grep -q '^ccdp_go_goroutines' \
            || { echo "bench /metrics endpoint broken" >&2; exit 1; }
        ok=1
        break
    fi
    sleep 0.2
done
wait "$pid"
[ -n "$ok" ] || { echo "debug endpoint never answered" >&2; exit 1; }

echo "==> replay determinism (shared store, two-pass)"
# Pass 1 fills the shared store (CI restores it via actions/cache keyed on
# sim.TraceGenVersion + go.sum); pass 2 must find it fully warm — any
# re-record fails via -require-store-hits.
go run ./cmd/ccdpbench -trace-dir /tmp/ccdp-trace-store -replay-compare -q -out /tmp/bench_replay.json
go run ./cmd/ccdpbench -trace-dir /tmp/ccdp-trace-store -replay-compare -require-store-hits -q -out /tmp/bench_replay2.json

echo "==> sweep smoke (shared store, decode-once engine)"
# A small grid over the store the determinism steps just warmed:
# -require-store-hits proves the sweep shares trace keys with the suite,
# and -sweep-compare (on by default) holds every cell byte-identical to
# an independent per-cell replay — across the chunk/queue, popularity-
# cutoff, and heap-fit axes, so the multi-profile broadcast and layout
# grouping are exercised end to end. -sweep-min-speedup holds the
# grouped engine to beating the ungrouped per-cell baseline (skipped
# with a notice under 4 CPUs). The ledger re-render proves the sweep
# event alone reproduces the matrix offline.
go run ./cmd/ccdpbench -sweep -sweep-workload compress \
    -sweep-sizes 4096,8192 -sweep-assocs 1,2 -parallel 4 \
    -sweep-chunks 256,512 -sweep-queues 8192,16384 \
    -sweep-cutoffs 0,0.001 -sweep-heaps first,temporal \
    -sweep-min-speedup 1.1 \
    -trace-dir /tmp/ccdp-trace-store -require-store-hits \
    -ledger /tmp/sweep-ledger.jsonl -out /tmp/bench_sweep.json
go run ./cmd/tables -from-ledger /tmp/sweep-ledger.jsonl

echo "==> multi-process store stress"
# Four concurrent processes against one cold store: the claim protocol
# must let exactly one record each key (recorded= counts sum to the
# distinct trace file count) and every process must replay byte-identical
# to its live run. See the matching ci.yml step.
rm -rf /tmp/ccdp-trace-stress
pids=""
for i in 1 2 3 4; do
    /tmp/ccdpbench-ci -workloads compress,espresso -scale 0.05 -seq-compare=false \
        -trace-dir /tmp/ccdp-trace-stress -trace-maintain=false -replay-compare \
        -q -quiet -out "/tmp/stress-$i.json" > "/tmp/stress-$i.log" 2>&1 &
    pids="$pids $!"
done
fail=0
for p in $pids; do wait "$p" || fail=1; done
cat /tmp/stress-*.log
[ "$fail" = 0 ] || { echo "a stress process failed" >&2; exit 1; }
recorded=$(grep -ho 'recorded=[0-9]*' /tmp/stress-*.log | cut -d= -f2 | awk '{s+=$1} END {print s}')
files=$(ls /tmp/ccdp-trace-stress/*.ctrace | wc -l)
echo "recorded=$recorded across processes, distinct traces=$files"
[ "$recorded" = "$files" ] || { echo "claim protocol leaked a double-record" >&2; exit 1; }
/tmp/ccdpbench-ci -workloads compress,espresso -scale 0.05 -seq-compare=false \
    -trace-dir /tmp/ccdp-trace-stress -require-store-hits -replay-compare -q -quiet -out /tmp/stress-warm.json

echo "==> multi-core speedup gate"
go run ./cmd/ccdpbench -parallel 4 -min-speedup 1.5 -q -out /tmp/bench_speedup.json

echo "==> placement service smoke (ccdpd)"
# Boot the daemon against the warm shared store, drive one job through
# submit -> status poll -> result over plain HTTP, then prove the service
# is deterministic: a second identical submission (via the ?wait=true
# fast path) must return byte-identical result bytes. Ends with a clean
# SIGTERM drain; a non-zero daemon exit fails the step.
go build -o /tmp/ccdpd-ci ./cmd/ccdpd
/tmp/ccdpd-ci -addr 127.0.0.1:18344 -trace-dir /tmp/ccdp-trace-store -quiet &
dpid=$!
up=""
for i in $(seq 1 50); do
    if curl -sf http://127.0.0.1:18344/healthz | grep -q '"status": *"ok"'; then up=1; break; fi
    sleep 0.2
done
[ -n "$up" ] || { echo "ccdpd never became healthy" >&2; exit 1; }
curl -sf http://127.0.0.1:18344/v1/workloads | grep -q '"espresso"' || { echo "workload listing broken" >&2; exit 1; }
jobreq='{"kind":"eval","workload":"espresso","scale":0.05}'
id=$(curl -sf -d "$jobreq" http://127.0.0.1:18344/v1/jobs | grep -o '"id": *"[^"]*"' | cut -d'"' -f4)
[ -n "$id" ] || { echo "submit returned no job id" >&2; exit 1; }
state=""
for i in $(seq 1 150); do
    state=$(curl -sf "http://127.0.0.1:18344/v1/jobs/$id" | grep -o '"state": *"[^"]*"' | cut -d'"' -f4)
    [ "$state" = "done" ] && break
    case "$state" in failed|cancelled) echo "job $id ended $state" >&2; exit 1;; esac
    sleep 0.2
done
[ "$state" = "done" ] || { echo "job $id stuck in '$state'" >&2; exit 1; }
curl -sf "http://127.0.0.1:18344/v1/jobs/$id/result" > /tmp/ccdpd-a.json
grep -q '"program": "espresso"' /tmp/ccdpd-a.json || { echo "result is not a report" >&2; exit 1; }
id2=$(curl -sf -d "$jobreq" "http://127.0.0.1:18344/v1/jobs?wait=true" | grep -o '"id": *"[^"]*"' | cut -d'"' -f4)
curl -sf "http://127.0.0.1:18344/v1/jobs/$id2/result" > /tmp/ccdpd-b.json
cmp /tmp/ccdpd-a.json /tmp/ccdpd-b.json || { echo "service results are not deterministic" >&2; exit 1; }
# Telemetry smoke: the SSE stream must replay to its terminal event and
# EOF, the span tree must be served, and /metrics must expose the job
# counters in parseable text exposition format.
curl -sN -m 60 "http://127.0.0.1:18344/v1/jobs/$id/events" > /tmp/ccdpd-events.txt
grep -q '^event: done' /tmp/ccdpd-events.txt || { echo "SSE stream had no terminal done event" >&2; exit 1; }
grep -q '^event: span' /tmp/ccdpd-events.txt || { echo "SSE stream had no span events" >&2; exit 1; }
curl -sf "http://127.0.0.1:18344/v1/jobs/$id/trace" | grep -q '"stage": *"job"' || { echo "trace endpoint missing job root span" >&2; exit 1; }
curl -sf http://127.0.0.1:18344/metrics > /tmp/ccdpd-metrics.txt
grep -q '^ccdp_server_jobs_done_total [0-9]' /tmp/ccdpd-metrics.txt || { echo "/metrics missing jobs_done counter" >&2; exit 1; }
awk '!/^#/ && NF != 2 { print "unparseable exposition line: " $0; bad = 1 } END { exit bad }' /tmp/ccdpd-metrics.txt || { echo "/metrics failed the parse check" >&2; exit 1; }
kill -TERM "$dpid"
wait "$dpid" || { echo "ccdpd exited non-zero on SIGTERM" >&2; exit 1; }

echo "==> ccdpd load harness"
# The built-in open-loop load test: submits eval jobs at a fixed QPS
# against an ephemeral instance and fails on any errored round trip.
/tmp/ccdpd-ci -selftest -selftest-qps 6 -selftest-duration 3s -quiet -trace-dir /tmp/ccdp-trace-store

echo "CI OK"
