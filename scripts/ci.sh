#!/usr/bin/env sh
# Local mirror of .github/workflows/ci.yml: run every CI gate in one shot.
# Usage: scripts/ci.sh [fast]
#   fast  skips the race and fuzz jobs (the slow half).
set -eu

cd "$(dirname "$0")/.."

echo "==> build"
go build ./...

echo "==> vet"
go vet ./...

echo "==> gofmt"
out="$(gofmt -l .)"
if [ -n "$out" ]; then
    echo "gofmt needed on:" >&2
    echo "$out" >&2
    exit 1
fi

echo "==> test"
go test ./...

if [ "${1:-}" != "fast" ]; then
    echo "==> race (exec, profile, core, sim, trace, metrics, benchsuite, ledger)"
    go test -race ./internal/exec/... ./internal/profile/... ./internal/core/... ./internal/sim/... ./internal/trace/... ./internal/metrics/... ./internal/benchsuite/... ./internal/ledger/...

    echo "==> fuzz smoke (persist, trace)"
    go test -fuzz=FuzzReadProfile -fuzztime=15s ./internal/persist
    go test -fuzz=FuzzReadPlacement -fuzztime=15s ./internal/persist
    go test -run=NONE -fuzz=FuzzTraceReader -fuzztime=15s ./internal/trace
fi

echo "==> bench gate"
go run ./cmd/ccdpbench -baseline bench_baseline.json -out "BENCH_local.json" -ledger "LEDGER_local.jsonl"

echo "==> re-render ledger"
go run ./cmd/tables -from-ledger "LEDGER_local.jsonl"

echo "==> debug endpoint smoke"
go build -o /tmp/ccdpbench-ci ./cmd/ccdpbench
/tmp/ccdpbench-ci -scale 0.2 -seq-compare=false -q -debug-addr 127.0.0.1:18080 -out /tmp/bench_debug.json &
pid=$!
ok=""
for i in $(seq 1 50); do
    if curl -sf http://127.0.0.1:18080/debug/snapshot | grep -q '"total"'; then
        curl -sf -o /dev/null http://127.0.0.1:18080/debug/pprof/
        ok=1
        break
    fi
    sleep 0.2
done
wait "$pid"
[ -n "$ok" ] || { echo "debug endpoint never answered" >&2; exit 1; }

echo "==> replay determinism"
go run ./cmd/ccdpbench -record /tmp/ccdp-traces-ci -replay-compare -q -out /tmp/bench_replay.json

echo "==> multi-core speedup gate"
go run ./cmd/ccdpbench -parallel 4 -min-speedup 1.5 -q -out /tmp/bench_speedup.json

echo "CI OK"
