package ccdp_test

import (
	"fmt"
	"log"

	"repro/ccdp"
)

// ExampleRun shows the one-call pipeline: profile a benchmark model on its
// train input, compute the placement, and compare miss rates on both
// inputs.
func ExampleRun() {
	w, err := ccdp.Workload("mgrid")
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := ccdp.Run(w, ccdp.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	nat := cmp.Result("test", ccdp.LayoutNatural)
	opt := cmp.Result("test", ccdp.LayoutCCDP)
	// mgrid is the paper's null case: one giant array, placement can
	// neither help nor hurt.
	fmt.Printf("mgrid moves less than half a point: %v\n",
		opt.MissRate()-nat.MissRate() < 0.5 && nat.MissRate()-opt.MissRate() < 0.5)
	// Output:
	// mgrid moves less than half a point: true
}

// ExampleProfile drives the pipeline stage by stage, the shape to use when
// one profile feeds many evaluations (cache sweeps, ablations).
func ExampleProfile() {
	w, err := ccdp.Workload("fpppp")
	if err != nil {
		log.Fatal(err)
	}
	opts := ccdp.DefaultOptions()
	pr, err := ccdp.Profile(w, w.Train(), opts)
	if err != nil {
		log.Fatal(err)
	}
	pm, err := ccdp.Place(w, pr, opts)
	if err != nil {
		log.Fatal(err)
	}
	nat, err := ccdp.Evaluate(w, w.Test(), ccdp.LayoutNatural, nil, nil, opts)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := ccdp.Evaluate(w, w.Test(), ccdp.LayoutCCDP, pr, pm, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fpppp improves by more than a third: %v\n",
		opt.MissRate() < nat.MissRate()*2/3)
	// Output:
	// fpppp improves by more than a third: true
}
