package ccdp_test

import (
	"bytes"
	"fmt"
	"log"
	"os"

	"repro/ccdp"
)

// ExampleRun shows the one-call pipeline: an Experiment names the
// workload and options, Run profiles the train input, computes the
// placement, and compares miss rates on both inputs.
func ExampleRun() {
	w, err := ccdp.Workload("mgrid")
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := ccdp.Run(ccdp.Experiment{Workload: w, Options: ccdp.DefaultOptions()})
	if err != nil {
		log.Fatal(err)
	}
	nat := cmp.Result("test", ccdp.LayoutNatural)
	opt := cmp.Result("test", ccdp.LayoutCCDP)
	// mgrid is the paper's null case: one giant array, placement can
	// neither help nor hurt.
	fmt.Printf("mgrid moves less than half a point: %v\n",
		opt.MissRate()-nat.MissRate() < 0.5 && nat.MissRate()-opt.MissRate() < 0.5)
	// Output:
	// mgrid moves less than half a point: true
}

// ExampleProfile drives the pipeline stage by stage, the shape to use when
// one profile feeds many evaluations (cache sweeps, ablations).
func ExampleProfile() {
	w, err := ccdp.Workload("fpppp")
	if err != nil {
		log.Fatal(err)
	}
	opts := ccdp.DefaultOptions()
	pr, err := ccdp.Profile(w, w.Train(), opts)
	if err != nil {
		log.Fatal(err)
	}
	pm, err := ccdp.Place(w, pr, opts)
	if err != nil {
		log.Fatal(err)
	}
	nat, err := ccdp.Evaluate(w, w.Test(), ccdp.LayoutNatural, nil, nil, opts)
	if err != nil {
		log.Fatal(err)
	}
	opt, err := ccdp.Evaluate(w, w.Test(), ccdp.LayoutCCDP, pr, pm, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fpppp improves by more than a third: %v\n",
		opt.MissRate() < nat.MissRate()*2/3)
	// Output:
	// fpppp improves by more than a third: true
}

// ExampleRun_trace records each input's event stream to files on first
// contact and drives every later pass from replay — the paper's ATOM
// split. Artifacts are byte-identical to a live run, so the two
// Comparisons here agree exactly.
func ExampleRun_trace() {
	w, err := ccdp.Workload("compress")
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "ccdp-traces")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	live, err := ccdp.Run(ccdp.Experiment{Workload: w, Options: ccdp.DefaultOptions()})
	if err != nil {
		log.Fatal(err)
	}
	// First traced run records; a second one would be pure replay.
	traced, err := ccdp.Run(ccdp.Experiment{
		Workload: w,
		Options:  ccdp.DefaultOptions(),
		Trace:    ccdp.TraceConfig{Dir: dir},
	})
	if err != nil {
		log.Fatal(err)
	}
	liveOpt := live.Result("test", ccdp.LayoutCCDP)
	tracedOpt := traced.Result("test", ccdp.LayoutCCDP)
	fmt.Printf("replay reproduces live exactly: %v\n",
		liveOpt.MissRate() == tracedOpt.MissRate() &&
			liveOpt.Stats == tracedOpt.Stats)
	// Output:
	// replay reproduces live exactly: true
}

// ExampleRecord captures one input's trace by hand and inspects it with
// Replay — the low-level surface under Experiment.Trace.
func ExampleRecord() {
	w, err := ccdp.Workload("compress")
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ccdp.Record(w, w.Test(), &buf, ccdp.DefaultOptions()); err != nil {
		log.Fatal(err)
	}
	tr, err := ccdp.Replay(&buf)
	if err != nil {
		log.Fatal(err)
	}
	hdr := tr.Header()
	fmt.Printf("recorded %d globals and %d constants\n", len(hdr.Globals), len(hdr.Constants))
	// Output:
	// recorded 18 globals and 2 constants
}
