// Package ccdp is the public API of the Cache-Conscious Data Placement
// reproduction (Calder, Krintz, John & Austin, ASPLOS 1998).
//
// The library profiles a program model's data-reference behaviour, builds
// the paper's Temporal Relationship Graph, computes a conflict-minimising
// placement for stack, globals, heap, and constants, and evaluates it on a
// simulated data cache:
//
//	w, _ := ccdp.Workload("compress")
//	cmp, _ := ccdp.Run(w, ccdp.DefaultOptions())
//	fmt.Printf("miss rate %.2f%% -> %.2f%%\n",
//		cmp.Result("test", ccdp.LayoutNatural).MissRate(),
//		cmp.Result("test", ccdp.LayoutCCDP).MissRate())
//
// The package re-exports the pipeline types from the internal packages;
// advanced users can drive the stages (ProfilePass, Place, EvalPass)
// separately.
package ccdp

import (
	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Re-exported core types. Aliases keep the public surface thin while the
// implementation lives in internal packages.
type (
	// Options bundles the experiment knobs (cache geometry, profiling
	// granularity, placement settings).
	Options = sim.Options
	// Comparison is one workload's full experiment result.
	Comparison = core.Comparison
	// EvalResult is one evaluation pass (one input, one layout).
	EvalResult = sim.EvalResult
	// LayoutKind names a placement under evaluation.
	LayoutKind = sim.LayoutKind
	// Input selects a workload dataset.
	Input = workload.Input
	// PlacementMap is the optimizer's output (paper phase 8).
	PlacementMap = placement.Map
	// ProfileResult carries the Name profile and TRG of a profiling run.
	ProfileResult = sim.ProfileResult
)

// The three placements the paper evaluates.
const (
	LayoutNatural = sim.LayoutNatural
	LayoutCCDP    = sim.LayoutCCDP
	LayoutRandom  = sim.LayoutRandom
)

// DefaultOptions returns the paper's configuration: 8 KB direct-mapped
// cache with 32-byte lines, 256-byte TRG chunks, a 16 KB recency queue,
// 99% popularity cutoff, and XOR naming depth 4.
func DefaultOptions() Options { return sim.DefaultOptions() }

// Workload returns a benchmark model by name (see WorkloadNames).
func Workload(name string) (workload.Workload, error) { return workload.Get(name) }

// WorkloadNames lists the nine benchmark models in the paper's table
// order.
func WorkloadNames() []string { return workload.Names() }

// Workloads returns every benchmark model in table order.
func Workloads() []workload.Workload { return workload.All() }

// Run profiles w on its train input, computes a CCDP placement, and
// evaluates the requested layouts and inputs (defaults: natural+CCDP on
// train+test).
func Run(w workload.Workload, opts Options) (*Comparison, error) {
	return core.Run(w, opts, nil, nil)
}

// RunLayouts is Run with explicit layout and input lists.
func RunLayouts(w workload.Workload, opts Options, layouts []LayoutKind, inputs []Input) (*Comparison, error) {
	return core.Run(w, opts, layouts, inputs)
}
