// Package ccdp is the public API of the Cache-Conscious Data Placement
// reproduction (Calder, Krintz, John & Austin, ASPLOS 1998).
//
// The library profiles a program model's data-reference behaviour, builds
// the paper's Temporal Relationship Graph, computes a conflict-minimising
// placement for stack, globals, heap, and constants, and evaluates it on a
// simulated data cache:
//
//	w, _ := ccdp.Workload("compress")
//	cmp, _ := ccdp.Run(ccdp.Experiment{Workload: w, Options: ccdp.DefaultOptions()})
//	fmt.Printf("miss rate %.2f%% -> %.2f%%\n",
//		cmp.Result("test", ccdp.LayoutNatural).MissRate(),
//		cmp.Result("test", ccdp.LayoutCCDP).MissRate())
//
// An Experiment can also name a trace directory, switching the pipeline to
// the paper's ATOM-style record-once / replay-many path: each input's
// event stream is recorded to a file on first contact and every
// profiling and evaluation pass replays the file instead of re-running
// the model, with byte-identical results. Record and Replay expose the
// trace files directly.
//
// The package re-exports the pipeline types from the internal packages;
// advanced users can drive the stages (Profile, Place, Evaluate)
// separately.
package ccdp

import (
	"io"

	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Re-exported core types. Aliases keep the public surface thin while the
// implementation lives in internal packages.
type (
	// Options bundles the experiment knobs (cache geometry, profiling
	// granularity, placement settings).
	Options = sim.Options
	// Experiment is one experiment request: the workload plus everything
	// that varies between runs — options, layouts, inputs, and the trace
	// source/sink configuration.
	Experiment = core.Experiment
	// TraceConfig selects trace-file-driven execution for an Experiment:
	// Dir names the directory traces are recorded to and replayed from;
	// RequireRecorded makes missing traces an error instead of recording.
	TraceConfig = sim.TraceConfig
	// Comparison is one workload's full experiment result.
	Comparison = core.Comparison
	// EvalResult is one evaluation pass (one input, one layout).
	EvalResult = sim.EvalResult
	// LayoutKind names a placement under evaluation.
	LayoutKind = sim.LayoutKind
	// Input selects a workload dataset.
	Input = workload.Input
	// PlacementMap is the optimizer's output (paper phase 8).
	PlacementMap = placement.Map
	// ProfileResult carries the Name profile and TRG of a profiling run.
	ProfileResult = sim.ProfileResult
	// TraceHeader is the static-shape header of a recorded trace file.
	TraceHeader = trace.FileHeader
	// TraceReader decodes a recorded trace file; see Replay.
	TraceReader = trace.Reader
)

// The three placements the paper evaluates.
const (
	LayoutNatural = sim.LayoutNatural
	LayoutCCDP    = sim.LayoutCCDP
	LayoutRandom  = sim.LayoutRandom
)

// DefaultOptions returns the paper's configuration: 8 KB direct-mapped
// cache with 32-byte lines, 256-byte TRG chunks, a 16 KB recency queue,
// 99% popularity cutoff, and XOR naming depth 4.
func DefaultOptions() Options { return sim.DefaultOptions() }

// Workload returns a benchmark model by name (see WorkloadNames).
func Workload(name string) (workload.Workload, error) { return workload.Get(name) }

// WorkloadNames lists the nine benchmark models in the paper's table
// order.
func WorkloadNames() []string { return workload.Names() }

// Workloads returns every benchmark model in table order.
func Workloads() []workload.Workload { return workload.All() }

// Run executes one Experiment: profile the workload on its train input,
// compute a CCDP placement, and evaluate the requested layouts and inputs
// (defaults: natural+CCDP on train+test). With Experiment.Trace enabled,
// every pass is driven from recorded trace files instead of the live
// model; results are byte-identical either way.
func Run(e Experiment) (*Comparison, error) {
	return core.RunExperiment(e)
}

// Record runs w once on in and writes its full event stream — the
// ATOM-style trace — to out. The trace replays through Replay, Run (via
// Experiment.Trace), or the CLIs' -replay flags without re-running the
// model.
func Record(w Program, in Input, out io.Writer, opts Options) error {
	return sim.RecordTrace(w, in, out, opts)
}

// Replay parses a recorded trace's header and returns its reader: the
// Header describes the program's static shape, and TraceReader.Replay
// drives any event handler with the recorded stream. Higher-level replay
// (straight to a Comparison) goes through Run with Experiment.Trace set.
func Replay(r io.Reader) (*TraceReader, error) {
	return trace.NewReader(r)
}
