package ccdp

import (
	"repro/internal/sim"
	"repro/internal/workload"
)

// Program is the interface a workload model implements: a deterministic
// generator of the data-reference behaviour CCDP profiles and optimises.
// The nine built-in models (see Workloads) implement it; custom programs
// can too — see examples/conflict.
type Program = workload.Workload

// Building blocks for custom programs.
type (
	// Spec declares a program's static shape (stack size, globals,
	// constants). It must not vary with the input.
	Spec = workload.Spec
	// Var declares one named static object.
	Var = workload.Var
	// Prog is the handle a Program drives during Run.
	Prog = workload.Prog
	// Activity is one weighted burst generator for Prog.RunMix.
	Activity = workload.Activity
	// HeapKind parameterises a family of heap allocations.
	HeapKind = workload.HeapKind
)

// Profile runs the profiling pass (Name profile + TRG) for w on input in.
func Profile(w Program, in Input, opts Options) (*ProfileResult, error) {
	return sim.ProfilePass(w, in, opts)
}

// Place computes the CCDP placement from a profile, honouring the
// program's heap-placement setting as the paper did per program.
func Place(w Program, pr *ProfileResult, opts Options) (*PlacementMap, error) {
	return sim.Place(w, pr, opts)
}

// Evaluate replays w's input under the given layout through the cache
// simulator. For LayoutCCDP, pr and pm must come from Profile and Place;
// they are ignored otherwise.
func Evaluate(w Program, in Input, kind LayoutKind, pr *ProfileResult, pm *PlacementMap, opts Options) (*EvalResult, error) {
	return sim.EvalPass(w, in, kind, pr, pm, opts, 0)
}
