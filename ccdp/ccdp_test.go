package ccdp_test

import (
	"testing"

	"repro/ccdp"
)

func TestWorkloadNames(t *testing.T) {
	names := ccdp.WorkloadNames()
	if len(names) != 9 {
		t.Fatalf("%d workloads, want the paper's 9", len(names))
	}
	if names[0] != "deltablue" || names[8] != "mgrid" {
		t.Fatalf("unexpected order: %v", names)
	}
}

func TestWorkloadLookup(t *testing.T) {
	if _, err := ccdp.Workload("compress"); err != nil {
		t.Fatal(err)
	}
	if _, err := ccdp.Workload("doom"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestDefaultOptionsMatchPaper(t *testing.T) {
	opts := ccdp.DefaultOptions()
	if opts.Cache.Size != 8192 || opts.Cache.BlockSize != 32 || opts.Cache.Assoc != 1 {
		t.Fatalf("default cache %+v, want the paper's 8K DM/32B", opts.Cache)
	}
	if opts.Profile.ChunkSize != 256 {
		t.Fatalf("chunk size %d, want 256", opts.Profile.ChunkSize)
	}
	if opts.NameDepth != 4 {
		t.Fatalf("XOR name depth %d, want 4", opts.NameDepth)
	}
}

func TestEndToEndRun(t *testing.T) {
	w, err := ccdp.Workload("fpppp")
	if err != nil {
		t.Fatal(err)
	}
	tr, te := w.Train(), w.Test()
	tr.Bursts /= 10
	te.Bursts /= 10
	cmp, err := ccdp.Run(ccdp.Experiment{
		Workload: w,
		Options:  ccdp.DefaultOptions(),
		Inputs:   []ccdp.Input{tr, te},
	})
	if err != nil {
		t.Fatal(err)
	}
	nat := cmp.Result("train", ccdp.LayoutNatural)
	opt := cmp.Result("train", ccdp.LayoutCCDP)
	if nat == nil || opt == nil {
		t.Fatal("missing results")
	}
	if opt.MissRate() >= nat.MissRate() {
		t.Fatalf("fpppp: CCDP %.2f%% did not beat natural %.2f%%",
			opt.MissRate(), nat.MissRate())
	}
}

func TestWorkloadsComplete(t *testing.T) {
	ws := ccdp.Workloads()
	if len(ws) != 9 {
		t.Fatalf("Workloads() returned %d entries", len(ws))
	}
	for _, w := range ws {
		if w.Description() == "" {
			t.Errorf("%s has no description", w.Name())
		}
	}
}

func TestStagedPipeline(t *testing.T) {
	w, err := ccdp.Workload("m88ksim")
	if err != nil {
		t.Fatal(err)
	}
	opts := ccdp.DefaultOptions()
	in := w.Train()
	in.Bursts /= 10

	pr, err := ccdp.Profile(w, in, opts)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := ccdp.Place(w, pr, opts)
	if err != nil {
		t.Fatal(err)
	}
	nat, err := ccdp.Evaluate(w, in, ccdp.LayoutNatural, nil, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := ccdp.Evaluate(w, in, ccdp.LayoutCCDP, pr, pm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if opt.MissRate() >= nat.MissRate() {
		t.Fatalf("staged pipeline: CCDP %.2f%% did not beat natural %.2f%%",
			opt.MissRate(), nat.MissRate())
	}
	rnd, err := ccdp.Evaluate(w, in, ccdp.LayoutRandom, nil, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rnd.MissRate() <= 0 {
		t.Fatal("random layout produced no misses")
	}
}

func TestCustomProgramThroughPublicAPI(t *testing.T) {
	cmp, err := ccdp.Run(ccdp.Experiment{Workload: pingpongProgram{}, Options: ccdp.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	nat := cmp.Result("test", ccdp.LayoutNatural)
	opt := cmp.Result("test", ccdp.LayoutCCDP)
	if opt.MissRate() >= nat.MissRate()/2 {
		t.Fatalf("custom pathological program: CCDP %.2f%% vs natural %.2f%%, want a dramatic fix",
			opt.MissRate(), nat.MissRate())
	}
}

// pingpongProgram mirrors examples/conflict: two hot tables separated by
// exactly one cache size of cold data.
type pingpongProgram struct{}

func (pingpongProgram) Name() string        { return "pingpong-test" }
func (pingpongProgram) Description() string { return "test program" }
func (pingpongProgram) HeapPlacement() bool { return false }
func (pingpongProgram) Train() ccdp.Input   { return ccdp.Input{Label: "train", Seed: 1, Bursts: 8000} }
func (pingpongProgram) Test() ccdp.Input    { return ccdp.Input{Label: "test", Seed: 2, Bursts: 8000} }
func (pingpongProgram) Spec() ccdp.Spec {
	return ccdp.Spec{
		StackSize: 1024,
		Globals: []ccdp.Var{
			{Name: "hot_a", Size: 2048},
			{Name: "cold", Size: 6144},
			{Name: "hot_b", Size: 2048},
		},
		Constants: []ccdp.Var{{Name: "tbl", Size: 128}},
	}
}
func (pingpongProgram) Run(in ccdp.Input, p *ccdp.Prog) {
	p.RunMix([]ccdp.Activity{
		p.HotSetActivity("pp", []int{0, 2}, []float64{1, 1}, 6, 0.3, 8),
		p.StackActivity(3, 1),
		p.ConstActivity("t", []int{0}, 2, 0.2),
	}, in.Bursts)
}
