package repro

// The benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus ablations over the design parameters DESIGN.md
// calls out. Each benchmark regenerates its artifact end to end (profile ->
// placement -> evaluation) at a reduced trace scale and reports the
// headline quantity of that artifact as a custom metric, so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's results table by table.

import (
	"testing"

	"repro/internal/benchsuite"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/xorname"
)

// benchScale trades fidelity for runtime in the bench harness. It is the
// same reduced scale cmd/ccdpbench and the CI bench gate run at, so the
// benchmarks here and the gated artifact measure identical pipelines.
const benchScale = benchsuite.DefaultScale

func scaledInputs(w workload.Workload, scale float64) []workload.Input {
	return benchsuite.ScaledInputs(w, scale)
}

// runSuite runs every workload through the pipeline with the given layouts.
func runSuite(b *testing.B, opts sim.Options, layouts []sim.LayoutKind) []*core.Comparison {
	b.Helper()
	cmps, err := benchsuite.RunSuite(opts, layouts, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	return cmps
}

func avgReduction(cmps []*core.Comparison, input string) float64 {
	return benchsuite.AvgReduction(cmps, input)
}

// BenchmarkTable1Stats regenerates Table 1: per-program, per-input workload
// statistics (reference counts, segment mix, allocation behaviour).
func BenchmarkTable1Stats(b *testing.B) {
	opts := sim.DefaultOptions()
	for i := 0; i < b.N; i++ {
		cmps := runSuite(b, opts, []sim.LayoutKind{sim.LayoutNatural})
		if out := report.Table1(cmps); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2SameInput regenerates Table 2: original vs CCDP miss rates
// with the train input used for both the profile and the measurement.
func BenchmarkTable2SameInput(b *testing.B) {
	opts := sim.DefaultOptions()
	var red float64
	for i := 0; i < b.N; i++ {
		cmps := runSuite(b, opts, nil)
		red = avgReduction(cmps, "train")
		if out := report.Table2(cmps); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
	b.ReportMetric(red, "%avg-reduction")
}

// BenchmarkTable3SizeBreakdown regenerates Table 3: references broken down
// by object size bucket.
func BenchmarkTable3SizeBreakdown(b *testing.B) {
	opts := sim.DefaultOptions()
	for i := 0; i < b.N; i++ {
		cmps := runSuite(b, opts, []sim.LayoutKind{sim.LayoutNatural})
		if out := report.Table3(cmps); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable4CrossInput regenerates Table 4 — the paper's headline
// experiment: placement trained on one input, measured on the other.
func BenchmarkTable4CrossInput(b *testing.B) {
	opts := sim.DefaultOptions()
	var red float64
	for i := 0; i < b.N; i++ {
		cmps := runSuite(b, opts, nil)
		red = avgReduction(cmps, "test")
		if out := report.Table4(cmps); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
	b.ReportMetric(red, "%avg-reduction")
}

// BenchmarkTable5Paging regenerates Table 5: total pages and working-set
// size under original and CCDP placement for the heap programs.
func BenchmarkTable5Paging(b *testing.B) {
	opts := sim.DefaultOptions()
	opts.TrackPages = true
	for i := 0; i < b.N; i++ {
		var cmps []*core.Comparison
		for _, name := range []string{"deltablue", "espresso", "gcc", "groff"} {
			w, err := workload.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			cmp, err := core.Run(w, opts, nil, scaledInputs(w, benchScale))
			if err != nil {
				b.Fatal(err)
			}
			cmps = append(cmps, cmp)
		}
		if out := report.Table5(cmps); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure3HeapScatter regenerates Figure 3: the per-heap-object
// scatter of miss rate versus reference count for the heap programs.
func BenchmarkFigure3HeapScatter(b *testing.B) {
	opts := sim.DefaultOptions()
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"deltablue", "espresso", "gcc", "groff"} {
			w, err := workload.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			cmp, err := core.Run(w, opts, []sim.LayoutKind{sim.LayoutNatural},
				scaledInputs(w, benchScale)[:1])
			if err != nil {
				b.Fatal(err)
			}
			if out := report.Figure3(cmp); len(out) == 0 {
				b.Fatal("empty figure")
			}
		}
	}
}

// BenchmarkRandomPlacement regenerates the section 5.1 control experiment:
// random placement versus natural versus CCDP. The reported metric is the
// random/natural miss-ratio average (the paper found >= 1.2x).
func BenchmarkRandomPlacement(b *testing.B) {
	opts := sim.DefaultOptions()
	layouts := []sim.LayoutKind{sim.LayoutNatural, sim.LayoutCCDP, sim.LayoutRandom}
	var ratio float64
	for i := 0; i < b.N; i++ {
		cmps := runSuite(b, opts, layouts)
		var sum float64
		for _, c := range cmps {
			nat := c.Result("test", sim.LayoutNatural)
			rnd := c.Result("test", sim.LayoutRandom)
			if nat.MissRate() > 0 {
				sum += rnd.MissRate() / nat.MissRate()
			}
		}
		ratio = sum / float64(len(cmps))
		if out := report.RandomTable(cmps); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
	b.ReportMetric(ratio, "rand/nat-ratio")
}

// BenchmarkCacheSweep regenerates the section 5.2 study: one placement
// (trained for 8K direct-mapped) evaluated across cache geometries,
// including associative caches.
func BenchmarkCacheSweep(b *testing.B) {
	targets := []cache.Config{
		{Size: 4 * 1024, BlockSize: 32, Assoc: 1},
		{Size: 8 * 1024, BlockSize: 32, Assoc: 1},
		{Size: 16 * 1024, BlockSize: 32, Assoc: 1},
		{Size: 8 * 1024, BlockSize: 32, Assoc: 2},
	}
	opts := sim.DefaultOptions()
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"espresso", "compress", "m88ksim"} {
			w, err := workload.Get(name)
			if err != nil {
				b.Fatal(err)
			}
			ins := scaledInputs(w, benchScale)
			pr, err := sim.ProfilePass(w, ins[0], opts)
			if err != nil {
				b.Fatal(err)
			}
			pm, err := sim.Place(w, pr, opts)
			if err != nil {
				b.Fatal(err)
			}
			for _, cc := range targets {
				evalOpts := opts
				evalOpts.Cache = cc
				if _, err := sim.EvalPass(w, ins[1], sim.LayoutCCDP, pr, pm, evalOpts, 0); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// ablate runs one workload's cross-input pipeline under modified options
// and returns the test-input reduction.
func ablate(b *testing.B, name string, mutate func(*sim.Options)) float64 {
	b.Helper()
	w, err := workload.Get(name)
	if err != nil {
		b.Fatal(err)
	}
	opts := sim.DefaultOptions()
	mutate(&opts)
	cmp, err := core.Run(w, opts, nil, scaledInputs(w, benchScale))
	if err != nil {
		b.Fatal(err)
	}
	return cmp.Reduction("test")
}

// BenchmarkAblationQueueThreshold varies the TRG recency-queue cap (the
// paper uses 2x the cache size).
func BenchmarkAblationQueueThreshold(b *testing.B) {
	for _, mult := range []int64{1, 2, 4} {
		b.Run(map[int64]string{1: "1x-cache", 2: "2x-cache", 4: "4x-cache"}[mult], func(b *testing.B) {
			var red float64
			for i := 0; i < b.N; i++ {
				red = ablate(b, "compress", func(o *sim.Options) {
					o.Profile.QueueThreshold = mult * o.Cache.Size
				})
			}
			b.ReportMetric(red, "%reduction")
		})
	}
}

// BenchmarkAblationChunkSize varies the TRG chunk granularity (paper: 256).
func BenchmarkAblationChunkSize(b *testing.B) {
	for _, cs := range []int64{64, 256, 1024} {
		b.Run(map[int64]string{64: "64B", 256: "256B", 1024: "1KB"}[cs], func(b *testing.B) {
			var red float64
			for i := 0; i < b.N; i++ {
				red = ablate(b, "m88ksim", func(o *sim.Options) {
					o.Profile.ChunkSize = cs
				})
			}
			b.ReportMetric(red, "%reduction")
		})
	}
}

// BenchmarkAblationNameDepth varies the XOR naming depth (paper: 4; Seidl &
// Zorn found 3-4 works and deeper over-specialises).
func BenchmarkAblationNameDepth(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 6} {
		b.Run(map[int]string{1: "depth1", 2: "depth2", 4: "depth4", 6: "depth6"}[depth], func(b *testing.B) {
			var red float64
			for i := 0; i < b.N; i++ {
				red = ablate(b, "espresso", func(o *sim.Options) {
					o.NameDepth = depth
				})
			}
			b.ReportMetric(red, "%reduction")
		})
	}
}

// BenchmarkAblationPopularity varies the phase-0 popularity cutoff
// (paper: objects covering 99% of total popularity).
func BenchmarkAblationPopularity(b *testing.B) {
	for _, cut := range []float64{0.90, 0.99, 1.0} {
		b.Run(map[float64]string{0.90: "90pct", 0.99: "99pct", 1.0: "100pct"}[cut], func(b *testing.B) {
			var red float64
			for i := 0; i < b.N; i++ {
				red = ablate(b, "go", func(o *sim.Options) {
					o.Profile.PopularityCutoff = cut
				})
			}
			b.ReportMetric(red, "%reduction")
		})
	}
}

// BenchmarkAblationAllocator compares first-fit against temporal-fit as
// the standalone heap policy on the heap-heavy deltablue model.
func BenchmarkAblationAllocator(b *testing.B) {
	w, err := workload.Get("deltablue")
	if err != nil {
		b.Fatal(err)
	}
	opts := sim.DefaultOptions()
	in := scaledInputs(w, benchScale)[0]
	b.Run("first-fit", func(b *testing.B) {
		var rate float64
		for i := 0; i < b.N; i++ {
			res, err := sim.EvalPass(w, in, sim.LayoutNatural, nil, nil, opts, 0)
			if err != nil {
				b.Fatal(err)
			}
			rate = res.MissRate()
		}
		b.ReportMetric(rate, "%missrate")
	})
	b.Run("ccdp-temporal-fit", func(b *testing.B) {
		pr, err := sim.ProfilePass(w, in, opts)
		if err != nil {
			b.Fatal(err)
		}
		pm, err := sim.Place(w, pr, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var rate float64
		for i := 0; i < b.N; i++ {
			res, err := sim.EvalPass(w, in, sim.LayoutCCDP, pr, pm, opts, 0)
			if err != nil {
				b.Fatal(err)
			}
			rate = res.MissRate()
		}
		b.ReportMetric(rate, "%missrate")
	})
}

// BenchmarkProfilePass measures the profiler alone (TRG construction is
// the pipeline's dominant cost).
func BenchmarkProfilePass(b *testing.B) {
	w, err := workload.Get("gcc")
	if err != nil {
		b.Fatal(err)
	}
	opts := sim.DefaultOptions()
	in := scaledInputs(w, benchScale)[0]
	for i := 0; i < b.N; i++ {
		if _, err := sim.ProfilePass(w, in, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlacementCompute measures the placement algorithm alone.
func BenchmarkPlacementCompute(b *testing.B) {
	w, err := workload.Get("go")
	if err != nil {
		b.Fatal(err)
	}
	opts := sim.DefaultOptions()
	pr, err := sim.ProfilePass(w, scaledInputs(w, benchScale)[0], opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Place(w, pr, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheSimulator measures raw simulation throughput.
func BenchmarkCacheSimulator(b *testing.B) {
	w, err := workload.Get("mgrid")
	if err != nil {
		b.Fatal(err)
	}
	opts := sim.DefaultOptions()
	in := scaledInputs(w, benchScale)[0]
	for i := 0; i < b.N; i++ {
		if _, err := sim.EvalPass(w, in, sim.LayoutNatural, nil, nil, opts, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkXORFold measures the naming primitive the custom malloc relies
// on being nearly free (the paper's constraint 2).
func BenchmarkXORFold(b *testing.B) {
	stack := []uint64{0x401000, 0x402000, 0x403000, 0x404000, 0x405000}
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= xorname.Fold(stack, xorname.DefaultDepth)
	}
	_ = sink
}

// TestBenchHarnessSmoke keeps the bench file honest under plain `go test`:
// the suite helpers must work at tiny scale.
func TestBenchHarnessSmoke(t *testing.T) {
	w, err := workload.Get("mgrid")
	if err != nil {
		t.Fatal(err)
	}
	opts := sim.DefaultOptions()
	ins := scaledInputs(w, 0.02)
	cmp, err := core.Run(w, opts, nil, ins[:1])
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Result("train", sim.LayoutNatural) == nil {
		t.Fatal("suite helper produced no result")
	}
	if profile.DefaultConfig(8192).ChunkSize != 256 {
		t.Fatal("paper parameters drifted")
	}
}

// BenchmarkAblationSampling varies time-sampled profiling (section 5.2's
// suggested cost reduction): what fraction of references must feed the
// TRG queue to retain the placement quality?
func BenchmarkAblationSampling(b *testing.B) {
	fractions := []struct {
		name   string
		window uint64
		period uint64
	}{
		{name: "full", window: 0, period: 0},
		{name: "25pct", window: 2500, period: 10000},
		{name: "10pct", window: 1000, period: 10000},
	}
	for _, f := range fractions {
		f := f
		b.Run(f.name, func(b *testing.B) {
			var red float64
			for i := 0; i < b.N; i++ {
				red = ablate(b, "compress", func(o *sim.Options) {
					o.Profile.SampleWindow = f.window
					o.Profile.SamplePeriod = f.period
				})
			}
			b.ReportMetric(red, "%reduction")
		})
	}
}

// BenchmarkAblationBlockSize varies the cache line size (the paper fixes
// 32 bytes): longer lines capture more spatial locality but raise the
// conflict cost of each overlap.
func BenchmarkAblationBlockSize(b *testing.B) {
	for _, bs := range []int64{16, 32, 64} {
		b.Run(map[int64]string{16: "16B", 32: "32B", 64: "64B"}[bs], func(b *testing.B) {
			var red float64
			for i := 0; i < b.N; i++ {
				red = ablate(b, "m88ksim", func(o *sim.Options) {
					o.Cache.BlockSize = bs
					o.Placement.Cache.BlockSize = bs
				})
			}
			b.ReportMetric(red, "%reduction")
		})
	}
}
